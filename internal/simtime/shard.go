// Sharded simulation engine: one hierarchical timing wheel per lane,
// a (time, shardID, seq) total order, and conservative-lookahead
// barriers at the cross-shard edges.
//
// # Shards and lanes
//
// A *logical shard* is a determinism domain: one per simulated host
// (plus shard 0, the root, for fabric-level drivers — switches,
// campaign oracles, fleet control loops). Shards are created with
// NewShard and are part of the topology, so the total order
// (when, shard, seq) never depends on how the engine is configured.
// A *lane* is a physical event wheel; shard s lives on lane s mod L.
// Running the same topology with L=1 or L=8 lanes only changes which
// wheel holds each event, never the order events fire in — that is the
// byte-identical-trace guarantee the chaos parity oracle checks.
//
// # Total order
//
// Every event is keyed (when, shard, seq) where shard is the shard
// *executing when the event was scheduled* (the scheduling context;
// the view's own shard when scheduled from driver code outside any
// event) and seq is that shard's private counter. Because each shard's
// execution is itself deterministic, keys are assigned identically no
// matter how many lanes exist or whether an event crossed a mailbox,
// so the merged order is reproducible by construction.
//
// # Ladder mode vs windowed mode
//
// By default the engine runs in "ladder" mode: a single goroutine pops
// the globally minimal key across all lane wheels. This keeps exact
// serial semantics (cross-shard scheduling and shared state are legal)
// while replacing the one deep binary heap with L shallow O(1) wheels.
//
// With SetWorkers(n>=1) and a positive lookahead (SetLookahead, or the
// minimum link latency reported via ObserveLookahead), the engine runs
// conservative windows instead: each round it computes the lower-bound
// timestamp H = minNextEvent + lookahead, drains every lane up to (but
// not including) H — an event exactly at the horizon waits for the
// next window — and merges cross-lane mailboxes at the barrier.
// Within a window lanes may run on separate goroutines; lane code must
// then touch only its own shard's state and use SendFrom for
// cross-lane communication (arrival times are asserted against H).
package simtime

import (
	"fmt"
	"sort"
	"sync"
)

// Timing-wheel geometry. Level 0 slots are 1024ns (~1µs) wide; each
// higher level is 256× coarser, so four levels cover ~73 minutes of
// virtual time and anything beyond spills into a keyed overflow heap.
const (
	wheelBits   = 8
	wheelSlots  = 1 << wheelBits
	wheelMask   = wheelSlots - 1
	wheelLevels = 4
	tickShift   = 10
	bitmapWords = wheelSlots / 64
)

// keyLess is the engine's total order: (when, shard, seq).
func keyLess(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.shard != b.shard {
		return a.shard < b.shard
	}
	return a.seq < b.seq
}

// keyHeap is a heap over the full (when, shard, seq) key, used only for
// the far-future overflow of a wheel.
type keyHeap []*Event

func (h *keyHeap) push(e *Event) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !keyLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *keyHeap) pop() *Event {
	old := *h
	e := old[0]
	n := len(old) - 1
	old[0] = old[n]
	old[n] = nil
	*h = old[:n]
	i, hp := 0, *h
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && keyLess(hp[l], hp[m]) {
			m = l
		}
		if r < n && keyLess(hp[r], hp[m]) {
			m = r
		}
		if m == i {
			break
		}
		hp[i], hp[m] = hp[m], hp[i]
		i = m
	}
	return e
}

type wheelLevel struct {
	slots  [wheelSlots][]*Event
	bitmap [bitmapWords]uint64
}

// wheel is one lane's future-event store: hierarchical bitmap-indexed
// timing wheels with a keyed overflow heap past the outermost span.
// Invariant: every queued event has when >= cur.
type wheel struct {
	cur      Time
	levels   [wheelLevels]wheelLevel
	overflow keyHeap
	count    int
	// free recycles drained slot slices so steady-state insert/drain
	// cycles allocate nothing (the freelist is bounded by the number of
	// slots ever nonempty at once).
	free [][]*Event
}

func (w *wheel) insert(e *Event) {
	w.count++
	tw := uint64(e.when) >> tickShift
	tc := uint64(w.cur) >> tickShift
	delta := tw - tc
	for l := uint(0); l < wheelLevels; l++ {
		if delta < 1<<((l+1)*wheelBits) {
			idx := int((tw >> (l * wheelBits)) & wheelMask)
			lv := &w.levels[l]
			if lv.slots[idx] == nil {
				lv.slots[idx] = w.getSlot()
			}
			lv.slots[idx] = append(lv.slots[idx], e)
			lv.bitmap[idx>>6] |= 1 << uint(idx&63)
			return
		}
	}
	w.overflow.push(e)
}

func (w *wheel) getSlot() []*Event {
	if n := len(w.free); n > 0 {
		s := w.free[n-1]
		w.free = w.free[:n-1]
		return s
	}
	return make([]*Event, 0, 8)
}

// recycle returns a drained slot slice to the freelist, dropping its
// event pointers for the GC.
func (w *wheel) recycle(s []*Event) {
	if cap(s) == 0 {
		return
	}
	s = s[:cap(s)]
	clear(s)
	w.free = append(w.free, s[:0])
}

// findSlot returns the first nonempty slot at level l, scanning
// circularly from the slot containing cur. start is the slot's absolute
// start time. Whole-empty bitmap words are skipped.
func (w *wheel) findSlot(l uint) (idx int, start Time, found bool) {
	lv := &w.levels[l]
	curSlotNum := (uint64(w.cur) >> tickShift) >> (l * wheelBits)
	s := int(curSlotNum & wheelMask)
	for off := 0; off < wheelSlots; off++ {
		i := (s + off) & wheelMask
		word := lv.bitmap[i>>6]
		if word == 0 {
			off += 63 - (i & 63) // skip rest of the empty word
			continue
		}
		if word&(1<<uint(i&63)) != 0 {
			slotNum := curSlotNum + uint64(off)
			return i, Time((slotNum << (l * wheelBits)) << tickShift), true
		}
	}
	return 0, 0, false
}

// nextSlot removes and returns the earliest nonempty level-0 window's
// events plus the exclusive end time of that window, cascading higher
// levels down as needed. ok is false when the wheel is empty.
//
// A level-l slot start is a multiple of the slot width 256^l ticks, so
// two candidate slots at different levels either start at the same time
// (the coarser one may hide earlier events and must cascade first) or
// the later one starts at or beyond the earlier one's end (safe).
// Choosing the minimum-start candidate, preferring the higher level on
// ties, is therefore sufficient for exact ordering.
func (w *wheel) nextSlot() (batch []*Event, end Time, ok bool) {
	for {
		bestL := -1
		var bestIdx int
		var bestStart Time
		for l := uint(0); l < wheelLevels; l++ {
			idx, start, found := w.findSlot(l)
			if !found {
				continue
			}
			if bestL < 0 || start < bestStart || (start == bestStart && int(l) > bestL) {
				bestL, bestIdx, bestStart = int(l), idx, start
			}
		}
		if len(w.overflow) > 0 && (bestL < 0 || w.overflow[0].when <= bestStart) {
			// The overflow head is due before (or at) every wheel slot:
			// pull it back through the wheel so it merges in exact order
			// with any same-window events.
			e := w.overflow.pop()
			if e.when > w.cur {
				w.cur = e.when
			}
			w.count--
			w.insert(e)
			continue
		}
		if bestL < 0 {
			return nil, 0, false
		}
		if start := bestStart; bestL == 0 {
			lv := &w.levels[0]
			batch = lv.slots[bestIdx]
			lv.slots[bestIdx] = nil
			lv.bitmap[bestIdx>>6] &^= 1 << uint(bestIdx&63)
			w.count -= len(batch)
			if start > w.cur {
				w.cur = start
			}
			return batch, start + (1 << tickShift), true
		}
		// Cascade: advance to the slot and push its events one level
		// down. Deltas from the advanced cur are strictly below the slot
		// width, so every event lands at level <= bestL-1: progress.
		if bestStart > w.cur {
			w.cur = bestStart
		}
		lv := &w.levels[bestL]
		evs := lv.slots[bestIdx]
		lv.slots[bestIdx] = nil
		lv.bitmap[bestIdx>>6] &^= 1 << uint(bestIdx&63)
		for _, e := range evs {
			w.count--
			w.insert(e)
		}
		w.recycle(evs)
	}
}

// lane is one physical event wheel plus the sorted "run" of the window
// currently being consumed. Invariant: wheel events have when >= runEnd;
// inserts below runEnd splice into the run's unconsumed tail.
type lane struct {
	eng      *ShardedClock
	idx      int
	now      Time
	wh       wheel
	run      []*Event
	runPos   int
	runEnd   Time
	outbox   []*Event
	running  bool  // inside a window drain (windowed mode)
	curShard int32 // shard of the event currently executing
	executed uint64
	// live is this lane's contribution to Pending(). Each counter is
	// only ever touched by its lane's own execution context (or the
	// single driver thread), so no atomics are needed; cross-lane sends
	// count on the sender and settle on the receiver, which keeps the
	// sum — the only externally visible value — exact at barriers.
	live int64
	// cachedHead memoizes head() for the ladder's min-scan; invalidated
	// by pop, insert, and cancel.
	cachedHead *Event
	headValid  bool
}

// peek returns head() through the lane's cache: lanes whose queues did
// not change since the last scan answer with two loads.
func (ln *lane) peek() *Event {
	if !ln.headValid {
		ln.cachedHead = ln.head()
		ln.headValid = true
	}
	return ln.cachedHead
}

func (ln *lane) insert(e *Event) {
	ln.headValid = false
	if e.when < ln.runEnd {
		i := ln.runPos
		for i < len(ln.run) && keyLess(ln.run[i], e) {
			i++
		}
		ln.run = append(ln.run, nil)
		copy(ln.run[i+1:], ln.run[i:])
		ln.run[i] = e
		return
	}
	ln.wh.insert(e)
}

// head returns the lane's next live event without consuming it, pulling
// and key-sorting the next wheel window when the run is exhausted.
func (ln *lane) head() *Event {
	for {
		for ln.runPos < len(ln.run) {
			e := ln.run[ln.runPos]
			if e.cancel {
				ln.run[ln.runPos] = nil
				ln.runPos++
				continue
			}
			return e
		}
		if ln.wh.count == 0 && len(ln.wh.overflow) == 0 {
			ln.run = ln.run[:0]
			ln.runPos = 0
			return nil
		}
		batch, end, ok := ln.wh.nextSlot()
		if !ok {
			ln.run = ln.run[:0]
			ln.runPos = 0
			return nil
		}
		// Copy live events into the lane's reusable run buffer and hand
		// the slot slice back to the wheel: the steady-state refill path
		// allocates nothing.
		ln.run = ln.run[:0]
		for _, e := range batch {
			if !e.cancel {
				ln.run = append(ln.run, e)
			}
		}
		ln.wh.recycle(batch)
		sortByKey(ln.run)
		ln.runPos = 0
		ln.runEnd = end
	}
}

// sortByKey orders a window batch by (when, shard, seq). Batches are
// typically small (one level-0 slot), so insertion sort wins and
// allocates nothing; large batches fall back to the library sort.
func sortByKey(evs []*Event) {
	if len(evs) <= 48 {
		for i := 1; i < len(evs); i++ {
			e := evs[i]
			j := i - 1
			for j >= 0 && keyLess(e, evs[j]) {
				evs[j+1] = evs[j]
				j--
			}
			evs[j+1] = e
		}
		return
	}
	sort.Slice(evs, func(i, j int) bool { return keyLess(evs[i], evs[j]) })
}

// pop consumes the event head() just returned.
func (ln *lane) pop() {
	ln.run[ln.runPos] = nil
	ln.runPos++
	ln.headValid = false
}

// drainWindow executes the lane's events with when < limit in key
// order. In windowed mode this may run on the lane's own goroutine.
func (ln *lane) drainWindow(limit Time) {
	ln.running = true
	for {
		e := ln.head()
		if e == nil || e.when >= limit {
			break
		}
		ln.pop()
		if e.when > ln.now {
			ln.now = e.when
		}
		ln.curShard = e.target
		ln.live--
		e.fn()
		ln.executed++
	}
	if limit-1 > ln.now {
		ln.now = limit - 1
	}
	ln.running = false
}

// ShardedClock is the sharded simulation engine. Create it with
// NewShardedClock, obtain *Clock views with Root and NewShard, and
// drive it through any view's Run/RunUntil/RunFor (or its own).
type ShardedClock struct {
	lanes    []*lane
	views    []*Clock // index = shard ID; views[0] is the root
	ctrs     []uint64 // per-shard key counters
	now      Time
	curShard int32 // executing shard in ladder mode; -1 outside events
	stopped  bool
	running  bool
	windowed bool // a window drain is in progress
	windowH  Time
	workers  int
	la       Duration // explicit lookahead (SetLookahead)
	observed Duration // min link lookahead (ObserveLookahead)
}

// NewShardedClock creates an engine with the given number of physical
// lanes (clamped to >= 1). Lane count is pure configuration: it never
// affects event order.
func NewShardedClock(lanes int) *ShardedClock {
	if lanes < 1 {
		lanes = 1
	}
	sc := &ShardedClock{curShard: -1}
	for i := 0; i < lanes; i++ {
		sc.lanes = append(sc.lanes, &lane{eng: sc, idx: i})
	}
	root := &Clock{eng: sc, shard: 0, lane: 0}
	sc.views = append(sc.views, root)
	sc.ctrs = append(sc.ctrs, 0)
	return sc
}

// Lanes returns the number of physical lanes.
func (sc *ShardedClock) Lanes() int { return len(sc.lanes) }

// Shards returns the number of logical shards (including the root).
func (sc *ShardedClock) Shards() int { return len(sc.views) }

// Root returns the fabric view: shard 0, for switches, campaign drivers
// and anything else that is not pinned to one simulated host.
func (sc *ShardedClock) Root() *Clock { return sc.views[0] }

// NewShard creates the next logical shard and returns its Clock view.
// Call once per simulated host, in topology order, so shard IDs — and
// with them the (when, shard, seq) total order — depend only on the
// topology, never on lane count.
func (sc *ShardedClock) NewShard() *Clock {
	id := int32(len(sc.views))
	v := &Clock{eng: sc, shard: id, lane: int(id) % len(sc.lanes)}
	sc.views = append(sc.views, v)
	sc.ctrs = append(sc.ctrs, 0)
	return v
}

// View returns the Clock view for shard id (Root for 0).
func (sc *ShardedClock) View(id int) *Clock { return sc.views[id] }

// SetLookahead sets an explicit conservative-lookahead bound,
// overriding the minimum observed from links.
func (sc *ShardedClock) SetLookahead(d Duration) { sc.la = d }

// ObserveLookahead reports a cross-shard link's minimum propagation
// delay; the engine keeps the minimum across all links as its barrier
// lookahead. simnet links call this when bound to a sharded view.
func (sc *ShardedClock) ObserveLookahead(d Duration) {
	if d <= 0 {
		return
	}
	if sc.observed == 0 || d < sc.observed {
		sc.observed = d
	}
}

// Lookahead returns the effective barrier lookahead: the explicit value
// if set, else the minimum link latency observed.
func (sc *ShardedClock) Lookahead() Duration {
	if sc.la > 0 {
		return sc.la
	}
	return sc.observed
}

// SetWorkers switches the engine into conservative-window mode with up
// to n lane goroutines per window (n <= 0 restores ladder mode; n == 1
// drains windows sequentially, still through the windowed path).
// Windowed mode additionally requires a positive Lookahead. Lane code
// must conform to shard isolation: within a window it may only touch
// its own shard's state and must use SendFrom across lanes.
func (sc *ShardedClock) SetWorkers(n int) { sc.workers = n }

// Now returns the engine's global virtual time.
func (sc *ShardedClock) Now() Time { return sc.now }

// Pending returns the number of scheduled events that have neither
// fired nor been canceled, across all lanes.
func (sc *ShardedClock) Pending() int {
	var n int64
	for _, ln := range sc.lanes {
		n += ln.live
	}
	return int(n)
}

// Executed returns the total number of events fired.
func (sc *ShardedClock) Executed() uint64 {
	var n uint64
	for _, ln := range sc.lanes {
		n += ln.executed
	}
	return n
}

func (sc *ShardedClock) viewNow(c *Clock) Time {
	ln := sc.lanes[c.lane]
	if sc.windowed && ln.running {
		return ln.now
	}
	return sc.now
}

func (sc *ShardedClock) scheduleAt(view *Clock, t Time, fn func()) *Event {
	ln := sc.lanes[view.lane]
	var schedShard int32
	if sc.windowed {
		if !ln.running {
			panic("simtime: cross-lane Schedule during a conservative window; use SendFrom")
		}
		schedShard = ln.curShard
		if t < ln.now {
			t = ln.now
		}
	} else {
		if sc.curShard >= 0 {
			schedShard = sc.curShard
		} else {
			schedShard = view.shard
		}
		if t < sc.now {
			t = sc.now
		}
	}
	e := &Event{when: t, seq: sc.ctrs[schedShard], shard: schedShard, target: view.shard, fn: fn, index: -1, eng: sc}
	sc.ctrs[schedShard]++
	ln.live++
	ln.insert(e)
	return e
}

func (sc *ShardedClock) sendFrom(src, dst *Clock, t Time, fn func()) *Event {
	if fn == nil {
		panic("simtime: SendFrom with nil function")
	}
	if !sc.windowed {
		return sc.scheduleAt(dst, t, fn)
	}
	srcLn := sc.lanes[src.lane]
	if !srcLn.running {
		panic("simtime: SendFrom outside lane execution during a window")
	}
	schedShard := srcLn.curShard
	if t < srcLn.now {
		t = srcLn.now
	}
	e := &Event{when: t, seq: sc.ctrs[schedShard], shard: schedShard, target: dst.shard, fn: fn, index: -1, eng: sc}
	sc.ctrs[schedShard]++
	srcLn.live++
	if dst.lane == src.lane {
		srcLn.insert(e)
		return e
	}
	if t < sc.windowH {
		panic(fmt.Sprintf("simtime: cross-shard send arriving at %v violates lookahead horizon %v", t, sc.windowH))
	}
	srcLn.outbox = append(srcLn.outbox, e)
	return e
}

func (sc *ShardedClock) cancelEvent(e *Event) {
	ln := sc.lanes[sc.views[e.target].lane]
	ln.live--
	// The canceled event may be the lane's memoized head.
	ln.headValid = false
}

func (sc *ShardedClock) flushOutboxes() {
	for _, ln := range sc.lanes {
		for _, e := range ln.outbox {
			sc.lanes[sc.views[e.target].lane].insert(e)
		}
		ln.outbox = ln.outbox[:0]
	}
}

// step fires the single globally-minimal event (ladder semantics).
func (sc *ShardedClock) step() bool {
	var best *lane
	var bestE *Event
	for _, ln := range sc.lanes {
		e := ln.peek()
		if e == nil {
			continue
		}
		if bestE == nil || keyLess(e, bestE) {
			bestE, best = e, ln
		}
	}
	if bestE == nil {
		return false
	}
	best.pop()
	sc.now = bestE.when
	best.now = bestE.when
	sc.curShard = bestE.target
	best.live--
	bestE.fn()
	best.executed++
	sc.curShard = -1
	return true
}

func (sc *ShardedClock) runLadder(until Time, bounded bool) {
	for !sc.stopped {
		var best *lane
		var bestE *Event
		for _, ln := range sc.lanes {
			e := ln.peek()
			if e == nil {
				continue
			}
			if bestE == nil || keyLess(e, bestE) {
				bestE, best = e, ln
			}
		}
		if bestE == nil || (bounded && bestE.when > until) {
			return
		}
		best.pop()
		sc.now = bestE.when
		best.now = bestE.when
		sc.curShard = bestE.target
		best.live--
		bestE.fn()
		best.executed++
		sc.curShard = -1
	}
}

func (sc *ShardedClock) runWindowed(until Time, bounded bool) {
	la := Time(sc.Lookahead())
	for !sc.stopped {
		sc.flushOutboxes()
		var minE *Event
		for _, ln := range sc.lanes {
			if e := ln.peek(); e != nil && (minE == nil || keyLess(e, minE)) {
				minE = e
			}
		}
		if minE == nil || (bounded && minE.when > until) {
			return
		}
		// Lower-bound timestamp: everything below H is safe to execute
		// because no cross-lane send issued at >= minE.when can arrive
		// before minE.when + lookahead. An event exactly at H waits for
		// the next window.
		h := minE.when + la
		if h <= minE.when {
			h = minE.when + 1
		}
		if bounded && h > until+1 {
			h = until + 1
		}
		sc.now = minE.when
		sc.windowH = h
		sc.windowed = true
		if sc.workers > 1 && len(sc.lanes) > 1 {
			var wg sync.WaitGroup
			for _, ln := range sc.lanes {
				wg.Add(1)
				go func(ln *lane) {
					defer wg.Done()
					ln.drainWindow(h)
				}(ln)
			}
			wg.Wait()
		} else {
			for _, ln := range sc.lanes {
				ln.drainWindow(h)
			}
		}
		sc.windowed = false
		sc.now = h - 1
	}
}

func (sc *ShardedClock) run(until Time, bounded bool) {
	if sc.running {
		panic("simtime: reentrant Run on ShardedClock")
	}
	sc.running = true
	defer func() { sc.running = false }()
	sc.stopped = false
	if sc.workers > 0 && sc.Lookahead() > 0 && len(sc.lanes) > 1 {
		sc.runWindowed(until, bounded)
	} else {
		sc.runLadder(until, bounded)
	}
	if bounded && sc.now < until {
		sc.now = until
	}
	for _, ln := range sc.lanes {
		if ln.now < sc.now {
			ln.now = sc.now
		}
	}
}

// Run fires events until no lane has any left or Stop is called.
func (sc *ShardedClock) Run() { sc.run(0, false) }

// RunUntil fires events with time <= t, then sets the engine to t.
func (sc *ShardedClock) RunUntil(t Time) { sc.run(t, true) }

// RunFor is shorthand for RunUntil(Now().Add(d)).
func (sc *ShardedClock) RunFor(d Duration) { sc.RunUntil(sc.now.Add(d)) }

// Stop makes a Run/RunUntil in progress return: after the current event
// in ladder mode, after the current window in windowed mode.
func (sc *ShardedClock) Stop() { sc.stopped = true }
