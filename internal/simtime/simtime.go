// Package simtime provides the virtual clock and event queue that drive
// the entire NiLiCon simulation.
//
// All simulated activity — container execution, packet delivery, disk
// writes, checkpoint state collection — is expressed as events on a
// single Clock. The simulation is therefore deterministic: events fire in
// (time, insertion order) sequence, and the only source of randomness is
// explicitly seeded generators (see NewRand).
package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration; all simulated latencies use it so
// call sites read naturally (e.g. 30*time.Millisecond).
type Duration = time.Duration

// Common duration constants re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. It is returned by Schedule so callers
// can cancel it before it fires.
type Event struct {
	when   Time
	seq    uint64
	fn     func()
	index  int // heap index; -1 when not queued
	cancel bool
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.cancel }

// When returns the virtual time at which the event fires (or would have
// fired, if canceled).
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Canceling an event that already
// fired is a no-op.
func (e *Event) Cancel() { e.cancel = true }

// eventHeap orders events by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is the virtual clock and event queue. The zero value is not
// usable; create one with NewClock.
type Clock struct {
	now     Time
	seq     uint64
	pq      eventHeap
	stopped bool
}

// NewClock returns a clock at virtual time zero with an empty queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Pending returns the number of events still queued (including canceled
// ones that have not been drained).
func (c *Clock) Pending() int { return len(c.pq) }

// Schedule queues fn to run after delay d. A negative delay is treated as
// zero. The returned Event may be canceled.
func (c *Clock) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.ScheduleAt(c.now.Add(d), fn)
}

// ScheduleAt queues fn to run at absolute virtual time t. Times in the
// past are clamped to now: the simulation never moves backward.
func (c *Clock) ScheduleAt(t Time, fn func()) *Event {
	if fn == nil {
		panic("simtime: ScheduleAt with nil function")
	}
	if t < c.now {
		t = c.now
	}
	e := &Event{when: t, seq: c.seq, fn: fn, index: -1}
	c.seq++
	heap.Push(&c.pq, e)
	return e
}

// Step fires the next event, advancing the clock to its time. It returns
// false when the queue is empty. Canceled events are skipped (but still
// advance nothing).
func (c *Clock) Step() bool {
	for len(c.pq) > 0 {
		e := heap.Pop(&c.pq).(*Event)
		if e.cancel {
			continue
		}
		c.now = e.when
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (c *Clock) Run() {
	c.stopped = false
	for !c.stopped && c.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled after t remain queued.
func (c *Clock) RunUntil(t Time) {
	c.stopped = false
	for !c.stopped {
		if len(c.pq) == 0 {
			break
		}
		// Peek at the earliest non-canceled event.
		next := c.pq[0]
		if next.cancel {
			heap.Pop(&c.pq)
			continue
		}
		if next.when > t {
			break
		}
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// RunFor is shorthand for RunUntil(Now().Add(d)).
func (c *Clock) RunFor(d Duration) { c.RunUntil(c.now.Add(d)) }

// Stop makes a Run/RunUntil in progress return after the current event.
func (c *Clock) Stop() { c.stopped = true }

// Sleeper is a convenience for code that wants to model a busy/blocked
// interval: it schedules fn after d and returns the event.
func (c *Clock) Sleeper(d Duration, fn func()) *Event { return c.Schedule(d, fn) }

// NewRand returns a deterministic random generator for the given seed.
// All simulation randomness must come from seeded generators so that
// experiments are exactly reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker struct {
	clock  *Clock
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker starts a ticker that calls fn every period, with the first
// call one period from now.
func NewTicker(c *Clock, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: non-positive ticker period %v", period))
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.clock.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
