// Package simtime provides the virtual clock and event queue that drive
// the entire NiLiCon simulation.
//
// All simulated activity — container execution, packet delivery, disk
// writes, checkpoint state collection — is expressed as events on a
// Clock. The simulation is therefore deterministic: events fire in
// (time, insertion order) sequence, and the only source of randomness is
// explicitly seeded generators (see NewRand).
//
// Two engines implement the same Clock API:
//
//   - NewClock returns the classic serial engine: one binary heap, one
//     goroutine, (time, seq) order. This is the reference semantics.
//   - NewShardedClock returns the sharded engine (see shard.go): one
//     hierarchical timing wheel per lane, (time, shardID, seq) total
//     order, and optional conservative-lookahead windows. Clocks
//     obtained from ShardedClock.Root/NewShard are *views* onto that
//     engine; every Clock method transparently routes to it, so code
//     written against *Clock runs unchanged on either engine.
package simtime

import (
	"container/heap"
	"fmt"
	"math/rand"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration re-exports time.Duration; all simulated latencies use it so
// call sites read naturally (e.g. 30*time.Millisecond).
type Duration = time.Duration

// Common duration constants re-exported for convenience.
const (
	Nanosecond  = time.Nanosecond
	Microsecond = time.Microsecond
	Millisecond = time.Millisecond
	Second      = time.Second
)

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time as a duration since simulation start.
func (t Time) String() string { return Duration(t).String() }

// Event is a scheduled callback. It is returned by Schedule so callers
// can cancel it before it fires.
type Event struct {
	when Time
	// seq breaks ties between same-time events. On the serial engine it
	// is a single clock-wide counter; on the sharded engine it is the
	// scheduling shard's counter, and (when, shard, seq) is the total
	// order.
	seq    uint64
	shard  int32 // scheduling shard (sharded engine only)
	target int32 // shard whose wheel holds the event (sharded engine only)
	fn     func()
	index  int // heap index; -1 when not queued
	cancel bool
	owner  *Clock        // serial engine that queued the event
	eng    *ShardedClock // sharded engine that queued the event
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.cancel }

// When returns the virtual time at which the event fires (or would have
// fired, if canceled).
func (e *Event) When() Time { return e.when }

// Cancel prevents the event from firing. Canceling an event that already
// fired is a no-op. On the serial engine the event is removed from the
// heap immediately, so Pending() never counts dead entries; the sharded
// engine drops canceled events lazily when their slot drains.
func (e *Event) Cancel() {
	if e.cancel {
		return
	}
	e.cancel = true
	if e.eng != nil {
		e.eng.cancelEvent(e)
		return
	}
	if e.owner != nil && e.index >= 0 {
		heap.Remove(&e.owner.pq, e.index)
	}
}

// eventHeap orders events by (when, seq).
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Clock is the virtual clock and event queue. The zero value is not
// usable; create one with NewClock, or obtain a sharded view with
// ShardedClock.Root/NewShard.
type Clock struct {
	now      Time
	seq      uint64
	pq       eventHeap
	stopped  bool
	executed uint64

	// View fields: when eng is non-nil this Clock is a view onto a
	// sharded engine and all state above is unused.
	eng   *ShardedClock
	shard int32
	lane  int
}

// NewClock returns a serial clock at virtual time zero with an empty
// queue.
func NewClock() *Clock {
	return &Clock{}
}

// Now returns the current virtual time.
func (c *Clock) Now() Time {
	if c.eng != nil {
		return c.eng.viewNow(c)
	}
	return c.now
}

// Shard returns the shard ID this clock schedules onto: 0 for a serial
// clock or a root view, the shard's ID for views from NewShard.
func (c *Clock) Shard() int { return int(c.shard) }

// Engine returns the sharded engine this clock is a view of, or nil for
// a serial clock. Simulation components (links, switches) use it to
// report their minimum propagation delay via ObserveLookahead.
func (c *Clock) Engine() *ShardedClock { return c.eng }

// Pending returns the number of scheduled events that have neither fired
// nor been canceled.
func (c *Clock) Pending() int {
	if c.eng != nil {
		return c.eng.Pending()
	}
	return len(c.pq)
}

// Executed returns the number of events fired since the clock was
// created. For a sharded view it reports the whole engine's count.
func (c *Clock) Executed() uint64 {
	if c.eng != nil {
		return c.eng.Executed()
	}
	return c.executed
}

// Schedule queues fn to run after delay d. A negative delay is treated as
// zero. The returned Event may be canceled.
func (c *Clock) Schedule(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return c.ScheduleAt(c.Now().Add(d), fn)
}

// ScheduleAt queues fn to run at absolute virtual time t. Times in the
// past are clamped to now: the simulation never moves backward.
func (c *Clock) ScheduleAt(t Time, fn func()) *Event {
	if fn == nil {
		panic("simtime: ScheduleAt with nil function")
	}
	if c.eng != nil {
		return c.eng.scheduleAt(c, t, fn)
	}
	if t < c.now {
		t = c.now
	}
	e := &Event{when: t, seq: c.seq, fn: fn, index: -1, owner: c}
	c.seq++
	heap.Push(&c.pq, e)
	return e
}

// SendFrom schedules fn at absolute time at on dst, identifying src as
// the sending clock. On serial clocks (or when src and dst share a
// lane) this is exactly dst.ScheduleAt. On a sharded engine running
// conservative windows, cross-lane sends must use SendFrom: the event is
// placed in the sending lane's outbox and merged at the next barrier,
// and its arrival time is checked against the lookahead horizon.
func SendFrom(src, dst *Clock, at Time, fn func()) *Event {
	if dst.eng == nil || dst.eng != src.eng {
		return dst.ScheduleAt(at, fn)
	}
	return dst.eng.sendFrom(src, dst, at, fn)
}

// Step fires the next event, advancing the clock to its time. It returns
// false when the queue is empty. Canceled events are removed eagerly by
// Cancel; any stragglers are skipped (and advance nothing).
func (c *Clock) Step() bool {
	if c.eng != nil {
		return c.eng.step()
	}
	for len(c.pq) > 0 {
		e := heap.Pop(&c.pq).(*Event)
		if e.cancel {
			continue
		}
		c.now = e.when
		c.executed++
		e.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Stop is called.
func (c *Clock) Run() {
	if c.eng != nil {
		c.eng.Run()
		return
	}
	c.stopped = false
	for !c.stopped && c.Step() {
	}
}

// RunUntil fires events with time <= t, then sets the clock to t. Events
// scheduled after t remain queued. An event exactly at t fires; the
// clock always lands exactly on t even when the queue goes empty early
// or the head events were canceled.
func (c *Clock) RunUntil(t Time) {
	if c.eng != nil {
		c.eng.RunUntil(t)
		return
	}
	c.stopped = false
	for !c.stopped && len(c.pq) > 0 {
		next := c.pq[0]
		if next.cancel {
			// Canceled events are removed eagerly by Cancel, so this is
			// defensive only: drop stragglers without touching now, so a
			// canceled head never stalls or misorders the boundary.
			heap.Pop(&c.pq)
			continue
		}
		if next.when > t {
			break
		}
		c.Step()
	}
	if c.now < t {
		c.now = t
	}
}

// RunFor is shorthand for RunUntil(Now().Add(d)).
func (c *Clock) RunFor(d Duration) { c.RunUntil(c.Now().Add(d)) }

// Stop makes a Run/RunUntil in progress return after the current event.
func (c *Clock) Stop() {
	if c.eng != nil {
		c.eng.Stop()
		return
	}
	c.stopped = true
}

// Sleeper is a convenience for code that wants to model a busy/blocked
// interval: it schedules fn after d and returns the event.
func (c *Clock) Sleeper(d Duration, fn func()) *Event { return c.Schedule(d, fn) }

// NewRand returns a deterministic random generator for the given seed.
// All simulation randomness must come from seeded generators so that
// experiments are exactly reproducible.
func NewRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Ticker repeatedly invokes a callback at a fixed period until stopped.
type Ticker struct {
	clock  *Clock
	period Duration
	fn     func()
	ev     *Event
	stop   bool
}

// NewTicker starts a ticker that calls fn every period, with the first
// call one period from now.
func NewTicker(c *Clock, period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic(fmt.Sprintf("simtime: non-positive ticker period %v", period))
	}
	t := &Ticker{clock: c, period: period, fn: fn}
	t.arm()
	return t
}

func (t *Ticker) arm() {
	t.ev = t.clock.Schedule(t.period, func() {
		if t.stop {
			return
		}
		t.fn()
		if !t.stop {
			t.arm()
		}
	})
}

// Stop cancels future ticks.
func (t *Ticker) Stop() {
	t.stop = true
	if t.ev != nil {
		t.ev.Cancel()
	}
}
