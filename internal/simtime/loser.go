package simtime

// loserTree is a tournament (loser) tree over the engine's lanes, keyed
// by each lane's head event under the (when, shard, seq) total order.
// It replaces the O(lanes) head scan in ladder mode: after the winning
// lane pops (or schedules onto itself), one fix() replays only that
// lane's root path — O(log lanes) key comparisons — to find the next
// global minimum.
//
// Layout: k = next power of two >= len(lanes) leaves; node[1..k-1] hold
// the *loser* of the match at each internal node, node[0] the overall
// winner. Leaves beyond len(lanes) are virtual lanes with +inf heads.
// Head keys are copied into the flat when/shard/seq arrays (refreshed
// by build for all lanes, by fix for the one changed lane), so a match
// is three integer compares against contiguous memory — no pointer
// chasing through lane and Event structs on the hot path.
//
// fix(i) is only sound when lane i rests at node[0] (it just won) —
// the ladder loop's pop/self-reschedule case. When an event touches a
// *different* lane (cross-shard scheduling is legal in ladder mode),
// the loop sets treeStale and rebuilds: O(lanes), same as the old scan,
// paid only on actual cross-lane traffic.
type loserTree struct {
	k     int
	node  []int32
	lanes []*lane
	// Cached head keys, indexed by lane; when == maxTime marks empty.
	when  []Time
	shard []int32
	seq   []uint64
}

// load refreshes lane i's cached key from its current head.
func (t *loserTree) load(i int32) {
	if e := t.lanes[i].peek(); e != nil {
		t.when[i], t.shard[i], t.seq[i] = e.when, e.shard, e.seq
	} else {
		t.when[i] = maxTime
	}
}

// less orders lane indices by their cached head keys; virtual (-1) and
// empty lanes sort as +inf. Ties between two empty lanes resolve false
// deterministically (the winner is only consumed when its head is
// non-nil, so the order among empties is unobservable).
func (t *loserTree) less(a, b int32) bool {
	if a < 0 {
		return false
	}
	if b < 0 {
		return true
	}
	if t.when[a] != t.when[b] {
		return t.when[a] < t.when[b]
	}
	if t.when[a] == maxTime { // both empty
		return false
	}
	if t.shard[a] != t.shard[b] {
		return t.shard[a] < t.shard[b]
	}
	return t.seq[a] < t.seq[b]
}

// build (re)constructs the tree from scratch, refreshing every lane's
// key and playing every match bottom-up. O(lanes) comparisons.
func (t *loserTree) build(lanes []*lane) {
	t.lanes = lanes
	k := 1
	for k < len(lanes) {
		k <<= 1
	}
	t.k = k
	if cap(t.node) < k {
		t.node = make([]int32, k)
		t.when = make([]Time, len(lanes))
		t.shard = make([]int32, len(lanes))
		t.seq = make([]uint64, len(lanes))
	} else {
		t.node = t.node[:k]
	}
	for i := range lanes {
		t.load(int32(i))
	}
	if k == 1 {
		t.node[0] = 0
		return
	}
	t.node[0] = t.initNode(1)
}

// initNode plays the matches in the subtree rooted at internal node j,
// storing losers on the way up and returning the subtree winner.
func (t *loserTree) initNode(j int) int32 {
	var a, b int32
	if 2*j >= t.k {
		a, b = t.leaf(2*j-t.k), t.leaf(2*j-t.k+1)
	} else {
		a, b = t.initNode(2*j), t.initNode(2*j+1)
	}
	if t.less(b, a) {
		t.node[j] = a
		return b
	}
	t.node[j] = b
	return a
}

func (t *loserTree) leaf(i int) int32 {
	if i < len(t.lanes) {
		return int32(i)
	}
	return -1
}

// fix replays the matches on lane i's root path after its head changed.
// Precondition: lane i is the current winner (node[0] == i), so i is
// stored nowhere in the internal nodes and every match on the path is a
// real two-team contest.
func (t *loserTree) fix(i int) {
	cur := int32(i)
	t.load(cur)
	for j := (t.k + i) >> 1; j >= 1; j >>= 1 {
		if t.less(t.node[j], cur) {
			cur, t.node[j] = t.node[j], cur
		}
	}
	t.node[0] = cur
}

// winner returns the lane index holding the globally minimal head (an
// empty lane only when every lane is empty).
func (t *loserTree) winner() int32 { return t.node[0] }

// runnerUp returns the cached key of the best lane other than the
// current winner w: in a loser tree the overall second-best is the
// minimum among the losers stored on the winner's root path. Returns a
// +inf key when every other lane is empty. O(log lanes).
func (t *loserTree) runnerUp(w int32) (Time, int32, uint64) {
	best := int32(-1)
	for j := (t.k + int(w)) >> 1; j >= 1; j >>= 1 {
		if t.less(t.node[j], best) {
			best = t.node[j]
		}
	}
	if best < 0 || t.when[best] == maxTime {
		return maxTime, 0, 0
	}
	return t.when[best], t.shard[best], t.seq[best]
}
