package simtime

import "sync/atomic"

// winPool is the persistent worker pool for conservative windows. The
// old implementation spawned one goroutine per lane per window plus a
// sync.WaitGroup; at µs-scale windows the spawn/join cost dominated.
// The pool keeps (workers-1) long-lived helper goroutines parked on
// per-worker wake channels; each window the driver publishes the active
// lane set, wakes the helpers, and participates in the drain itself.
// Lanes are claimed wait-free off a shared atomic cursor, so an
// early-finishing worker steals the remaining lanes instead of idling.
//
// Memory ordering: the driver writes lane state and p.act strictly
// before the wake sends, and helpers write lane state strictly before
// the done sends, so all cross-goroutine access is ordered by the
// channels; only the cursor needs an atomic.
//
// Pools are per-run: runWindowed creates helpers lazily at the first
// parallel window and closes them when the run returns, so idle engines
// (tests create thousands) never hold goroutines alive.
type winPool struct {
	cursor atomic.Int32
	act    []*lane
	wake   []chan struct{}
	done   chan struct{}
	quit   chan struct{}
}

// drain claims and drains lanes until the cursor passes the active set.
func (p *winPool) drain() {
	for {
		i := int(p.cursor.Add(1)) - 1
		if i >= len(p.act) {
			return
		}
		p.act[i].drainWindow()
	}
}

func (p *winPool) worker(wake chan struct{}) {
	for {
		select {
		case <-p.quit:
			return
		case <-wake:
			p.drain()
			p.done <- struct{}{}
		}
	}
}

// drainParallel runs one window's active lanes on up to sc.workers
// goroutines (including the calling driver).
func (sc *ShardedClock) drainParallel(act []*lane) {
	nw := sc.workers
	if nw > len(act) {
		nw = len(act)
	}
	if sc.pool == nil {
		sc.pool = &winPool{done: make(chan struct{}, nw-1), quit: make(chan struct{})}
	}
	p := sc.pool
	for len(p.wake) < nw-1 {
		ch := make(chan struct{}, 1)
		p.wake = append(p.wake, ch)
		go p.worker(ch)
	}
	p.act = act
	p.cursor.Store(0)
	for i := 0; i < nw-1; i++ {
		p.wake[i] <- struct{}{}
	}
	p.drain()
	for i := 0; i < nw-1; i++ {
		<-p.done
	}
}

// stopPool tears down the run's helper goroutines (no-op when no
// parallel window ever ran).
func (sc *ShardedClock) stopPool() {
	if sc.pool != nil {
		close(sc.pool.quit)
		sc.pool = nil
	}
}
