package simtime

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"
)

// buildShardTopology schedules an identical deterministic workload onto
// an engine with the given lane count: nShards host shards, each running
// a self-rescheduling task, plus cross-shard sends and a root driver.
// It returns the recorded execution log.
func runShardWorkload(t *testing.T, lanes, nShards int, seed int64) []string {
	t.Helper()
	sc := NewShardedClock(lanes)
	views := make([]*Clock, nShards)
	for i := range views {
		views[i] = sc.NewShard()
	}
	var log []string
	rng := NewRand(seed)
	for i, v := range views {
		i, v := i, v
		var step func()
		n := 0
		step = func() {
			n++
			log = append(log, fmt.Sprintf("s%d n%d t%d", i, n, v.Now()))
			if n < 50 {
				v.Schedule(Duration(50+rng.Intn(200))*Microsecond, step)
			}
			// Cross-shard ping to the next shard (legal in ladder mode).
			peer := views[(i+1)%len(views)]
			peer.Schedule(300*Microsecond, func() {
				log = append(log, fmt.Sprintf("ping s%d->s%d t%d", i, (i+1)%len(views), peer.Now()))
			})
		}
		v.Schedule(Duration(i+1)*Microsecond, step)
	}
	done := false
	sc.Root().Schedule(40*Millisecond, func() { done = true })
	sc.Root().RunUntil(Time(60 * Millisecond))
	if !done {
		t.Fatal("root driver event did not fire")
	}
	return log
}

// The core tentpole guarantee: the same topology and seed produce an
// identical execution order no matter how many physical lanes back it.
func TestShardedLaneCountInvariance(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		ref := runShardWorkload(t, 1, 5, seed)
		if len(ref) == 0 {
			t.Fatal("empty reference log")
		}
		for _, lanes := range []int{2, 3, 4, 8} {
			got := runShardWorkload(t, lanes, 5, seed)
			if len(got) != len(ref) {
				t.Fatalf("lanes=%d seed=%d: %d events, want %d", lanes, seed, len(got), len(ref))
			}
			for i := range ref {
				if got[i] != ref[i] {
					t.Fatalf("lanes=%d seed=%d: event %d = %q, want %q", lanes, seed, i, got[i], ref[i])
				}
			}
		}
	}
}

// A sharded engine with one shard per event must agree with the serial
// clock on ordering semantics (time order, insertion-order ties within
// a shard, clamping).
func TestShardedMatchesSerialSemantics(t *testing.T) {
	serial := NewClock()
	sc := NewShardedClock(4)
	view := sc.Root()
	var a, b []int
	for i := 0; i < 20; i++ {
		i := i
		d := Duration((i*37)%11) * Millisecond
		serial.Schedule(d, func() { a = append(a, i) })
		view.Schedule(d, func() { b = append(b, i) })
	}
	serial.Run()
	sc.Run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("serial order %v != sharded order %v", a, b)
	}
	if serial.Now() != sc.Now() {
		t.Fatalf("serial now %v != sharded now %v", serial.Now(), sc.Now())
	}
}

func TestShardedRunUntilBoundary(t *testing.T) {
	sc := NewShardedClock(2)
	v := sc.NewShard()
	var fired []Time
	v.Schedule(10*Millisecond, func() { fired = append(fired, v.Now()) })
	v.Schedule(20*Millisecond, func() { fired = append(fired, v.Now()) })
	v.Schedule(20*Millisecond+1, func() { fired = append(fired, v.Now()) })
	sc.RunUntil(Time(20 * Millisecond))
	if len(fired) != 2 {
		t.Fatalf("RunUntil(20ms) fired %d events, want 2 (event exactly at t must fire)", len(fired))
	}
	if sc.Now() != Time(20*Millisecond) {
		t.Fatalf("engine at %v, want exactly 20ms", sc.Now())
	}
	if v.Now() != Time(20*Millisecond) {
		t.Fatalf("view at %v, want exactly 20ms", v.Now())
	}
	sc.Run()
	if len(fired) != 3 {
		t.Fatalf("remaining event did not fire: %d", len(fired))
	}
}

func TestShardedRunUntilIdleAdvances(t *testing.T) {
	sc := NewShardedClock(3)
	sc.RunUntil(Time(time.Second))
	if sc.Now() != Time(time.Second) {
		t.Fatalf("idle RunUntil left engine at %v, want 1s", sc.Now())
	}
}

func TestShardedCancel(t *testing.T) {
	sc := NewShardedClock(2)
	v := sc.NewShard()
	fired := false
	e := v.Schedule(Millisecond, func() { fired = true })
	if v.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", v.Pending())
	}
	e.Cancel()
	if v.Pending() != 0 {
		t.Fatalf("Pending after Cancel = %d, want 0 (canceled events must not be counted)", v.Pending())
	}
	sc.Run()
	if fired {
		t.Fatal("canceled event fired")
	}
}

func TestShardedPendingAndExecuted(t *testing.T) {
	sc := NewShardedClock(4)
	views := []*Clock{sc.NewShard(), sc.NewShard(), sc.NewShard()}
	for i, v := range views {
		v.Schedule(Duration(i+1)*Millisecond, func() {})
	}
	if sc.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", sc.Pending())
	}
	sc.Run()
	if sc.Pending() != 0 {
		t.Fatalf("Pending after Run = %d, want 0", sc.Pending())
	}
	if sc.Executed() != 3 {
		t.Fatalf("Executed = %d, want 3", sc.Executed())
	}
}

// Barrier boundary: with lookahead L and the minimum next event at time
// m, events strictly below m+L execute in the window; an event exactly
// at the horizon m+L must wait for the next window. Observable through
// the mailbox: a cross-lane send issued in window 1 arriving exactly at
// the horizon is flushed at the barrier, so if the horizon event ran in
// window 1 it would fire before the mailbox event despite having the
// larger (when, shard, seq) key.
func TestShardedWindowHorizonBoundary(t *testing.T) {
	sc := NewShardedClock(2)
	a := sc.NewShard() // shard 1, lane 1
	b := sc.NewShard() // shard 2, lane 0 (with root)
	const la = 100 * Microsecond
	sc.SetLookahead(la)
	sc.SetWorkers(1) // windowed path, deterministic sequential drain

	var aLog, bLog []string
	// Window 1 starts at t=10µs (min event), horizon t=110µs.
	a.ScheduleAt(Time(10*Microsecond), func() {
		aLog = append(aLog, "a@10")
		// Arrives exactly at the horizon: legal, rides the mailbox.
		SendFrom(a, b, Time(110*Microsecond), func() { bLog = append(bLog, "mail@110") })
	})
	b.ScheduleAt(Time(109*Microsecond+999), func() { bLog = append(bLog, "b@109.999") })
	// Exactly at the horizon: must NOT run in window 1. Its key
	// (110µs, shard 2, ·) sorts after the mailbox event's key
	// (110µs, shard 1, ·), so in window 2 the mailbox event runs first.
	b.ScheduleAt(Time(110*Microsecond), func() { bLog = append(bLog, "b@110(horizon)") })
	sc.RunUntil(Time(1 * Millisecond))

	if fmt.Sprint(aLog) != "[a@10]" {
		t.Fatalf("aLog = %v, want [a@10]", aLog)
	}
	want := []string{"b@109.999", "mail@110", "b@110(horizon)"}
	if fmt.Sprint(bLog) != fmt.Sprint(want) {
		t.Fatalf("bLog = %v, want %v (horizon event must wait for the next window and sort after the mailbox event)", bLog, want)
	}
}

// SendFrom across lanes during a window must be deferred through the
// mailbox and arrive no earlier than the horizon.
func TestShardedSendFromMailbox(t *testing.T) {
	sc := NewShardedClock(2)
	a := sc.NewShard()
	b := sc.NewShard()
	const la = 50 * Microsecond
	sc.SetLookahead(la)
	sc.SetWorkers(1)

	got := Time(-1)
	a.ScheduleAt(Time(10*Microsecond), func() {
		// Cross-lane: must ride the mailbox, arriving >= the horizon.
		SendFrom(a, b, a.Now().Add(la), func() { got = b.Now() })
	})
	sc.RunUntil(Time(1 * Millisecond))
	if got != Time(60*Microsecond) {
		t.Fatalf("cross-lane send fired at %v, want 60µs", got)
	}
}

func TestShardedSendFromBelowHorizonPanics(t *testing.T) {
	sc := NewShardedClock(2)
	a := sc.NewShard()
	b := sc.NewShard()
	sc.SetLookahead(100 * Microsecond)
	sc.SetWorkers(1)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-lane send below the lookahead horizon did not panic")
		}
	}()
	a.ScheduleAt(Time(10*Microsecond), func() {
		SendFrom(a, b, a.Now().Add(10*Microsecond), func() {}) // 20µs < horizon 110µs
	})
	sc.RunUntil(Time(1 * Millisecond))
}

// Windowed mode with parallel workers must produce the same result as
// ladder mode when lanes are isolated (each lane only touches its own
// state and uses SendFrom across lanes). This is the -race soak target.
func TestShardedWindowedParallelMatchesLadder(t *testing.T) {
	run := func(workers int) []string {
		sc := NewShardedClock(4)
		const nShards = 8
		views := make([]*Clock, nShards)
		logs := make([][]string, nShards) // per-lane logs: no shared state
		for i := range views {
			views[i] = sc.NewShard()
		}
		const la = 100 * Microsecond
		sc.SetLookahead(la)
		sc.SetWorkers(workers)
		for i := range views {
			i, v := i, views[i]
			n := 0
			var step func()
			step = func() {
				n++
				logs[i] = append(logs[i], fmt.Sprintf("s%d n%d t%d", i, n, v.Now()))
				if n < 200 {
					v.Schedule(Duration(20+(n*i)%60)*Microsecond, step)
				}
				if n%10 == 0 {
					peer := views[(i+3)%nShards]
					SendFrom(v, peer, v.Now().Add(la+Duration(n)*Microsecond), func() {
						pi := (i + 3) % nShards
						logs[pi] = append(logs[pi], fmt.Sprintf("s%d got ping t%d", pi, peer.Now()))
					})
				}
			}
			v.Schedule(Duration(i+1)*Microsecond, step)
		}
		sc.RunUntil(Time(100 * Millisecond))
		var all []string
		for _, l := range logs {
			all = append(all, l...)
		}
		return all
	}
	ladder := run(0)
	seq := run(1)
	par := run(8)
	if fmt.Sprint(ladder) != fmt.Sprint(seq) {
		t.Fatal("sequential windowed run diverged from ladder run")
	}
	if fmt.Sprint(seq) != fmt.Sprint(par) {
		t.Fatal("parallel windowed run diverged from sequential windowed run")
	}
}

// The wheel must honor arbitrary far-future schedules (higher levels
// and overflow) in exact time order.
func TestShardedFarFutureOrdering(t *testing.T) {
	sc := NewShardedClock(2)
	v := sc.NewShard()
	delays := []Duration{
		500 * Nanosecond,  // level 0
		3 * Millisecond,   // level 1
		900 * Millisecond, // level 2
		40 * time.Second,  // level 3
		2 * time.Hour,     // overflow
		90 * time.Minute,  // overflow
		17 * time.Second,  // level 3
		100 * Microsecond, // level 0
		65 * Millisecond,  // level 2 boundary-ish
		260 * Microsecond, // level 0/1 boundary
	}
	var fired []Time
	for _, d := range delays {
		v.Schedule(d, func() { fired = append(fired, v.Now()) })
	}
	sc.Run()
	if len(fired) != len(delays) {
		t.Fatalf("fired %d, want %d", len(fired), len(delays))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order at %d: %v after %v", i, fired[i], fired[i-1])
		}
	}
	if sc.Executed() != uint64(len(delays)) {
		t.Fatalf("Executed = %d, want %d", sc.Executed(), len(delays))
	}
}

// Property: arbitrary delays and cancels behave identically on the
// serial clock and a multi-lane sharded engine driven from one shard.
func TestPropertyShardedEquivalence(t *testing.T) {
	f := func(delaysUs []uint16, cancelMask []bool) bool {
		serial := NewClock()
		sc := NewShardedClock(3)
		view := sc.NewShard()
		var a, b []int
		se := make([]*Event, len(delaysUs))
		he := make([]*Event, len(delaysUs))
		for i, d := range delaysUs {
			i := i
			dur := Duration(d) * Microsecond
			se[i] = serial.Schedule(dur, func() { a = append(a, i) })
			he[i] = view.Schedule(dur, func() { b = append(b, i) })
		}
		for i := range se {
			if i < len(cancelMask) && cancelMask[i] {
				se[i].Cancel()
				he[i].Cancel()
			}
		}
		serial.Run()
		sc.Run()
		if serial.Pending() != 0 || sc.Pending() != 0 {
			return false
		}
		return fmt.Sprint(a) == fmt.Sprint(b) && serial.Now() == sc.Now()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestShardedTicker(t *testing.T) {
	sc := NewShardedClock(2)
	v := sc.NewShard()
	var ticks []Time
	tk := NewTicker(v, 30*Millisecond, func() { ticks = append(ticks, v.Now()) })
	sc.RunUntil(Time(100 * Millisecond))
	tk.Stop()
	sc.RunUntil(Time(500 * Millisecond))
	if len(ticks) != 3 {
		t.Fatalf("ticker fired %d times, want 3: %v", len(ticks), ticks)
	}
}

func TestShardedStop(t *testing.T) {
	sc := NewShardedClock(2)
	v := sc.NewShard()
	count := 0
	for i := 0; i < 10; i++ {
		v.Schedule(Duration(i+1)*Millisecond, func() {
			count++
			if count == 3 {
				v.Stop()
			}
		})
	}
	sc.Run()
	if count != 3 {
		t.Fatalf("Stop did not interrupt ladder run: %d events fired, want 3", count)
	}
}

func BenchmarkShardedEngine(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := NewShardedClock(4)
		views := make([]*Clock, 8)
		for j := range views {
			views[j] = sc.NewShard()
		}
		for j := range views {
			j, v := j, views[j]
			n := 0
			var step func()
			step = func() {
				n++
				if n < 500 {
					v.Schedule(Duration(10+(n+j)%50)*Microsecond, step)
				}
			}
			v.Schedule(Microsecond, step)
		}
		sc.Run()
	}
}
