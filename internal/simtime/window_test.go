package simtime

import (
	"fmt"
	"testing"
)

// With workers set but no lookahead (explicit or observed), windowed
// mode has no safe horizon — the engine must take the ladder path.
func TestWindowedZeroLookaheadFallsBackToLadder(t *testing.T) {
	sc := NewShardedClock(4)
	a, b := sc.NewShard(), sc.NewShard()
	sc.SetWorkers(4) // but Lookahead() == 0
	var order []string
	a.Schedule(20*Microsecond, func() { order = append(order, "a@20") })
	b.Schedule(10*Microsecond, func() { order = append(order, "b@10") })
	b.Schedule(30*Microsecond, func() { order = append(order, "b@30") })
	sc.Run()
	if sc.Windows() != 0 {
		t.Fatalf("zero lookahead ran %d windows, want ladder fallback (0)", sc.Windows())
	}
	if fmt.Sprint(order) != "[b@10 a@20 b@30]" {
		t.Fatalf("ladder fallback order = %v", order)
	}
}

// A single-lane engine has nothing to overlap: even with workers and a
// positive lookahead it must take the serial drain, not pay window
// barriers.
func TestWindowedSingleLaneStaysSerial(t *testing.T) {
	sc := NewShardedClock(1)
	a, b := sc.NewShard(), sc.NewShard()
	sc.SetLookahead(100 * Microsecond)
	sc.SetWorkers(4)
	var order []string
	a.Schedule(20*Microsecond, func() { order = append(order, "a@20") })
	b.Schedule(10*Microsecond, func() { order = append(order, "b@10") })
	sc.Run()
	if sc.Windows() != 0 {
		t.Fatalf("single lane ran %d windows, want serial drain (0)", sc.Windows())
	}
	if fmt.Sprint(order) != "[b@10 a@20]" {
		t.Fatalf("serial order = %v", order)
	}
}

// A smaller link latency observed mid-run (a link attaching while the
// simulation is running) must shrink the NEXT window, never the one in
// progress: events already inside the current window's horizon still
// drain in it.
func TestObserveLookaheadShrinksNextWindowOnly(t *testing.T) {
	sc := NewShardedClock(2)
	a := sc.NewShard() // lane 1
	b := sc.NewShard() // lane 0
	sc.ObserveLookahead(200 * Microsecond)
	sc.SetWorkers(1) // sequential windowed drain: events may touch sc

	win := map[string]uint64{}
	// Window 1: heads a@10 and b@100. Lane 1's horizon is bounded by
	// lane 0's head: 100µs + λ = 300µs under λ=200µs — but only 150µs
	// had the shrink to λ=50µs applied immediately.
	a.ScheduleAt(Time(10*Microsecond), func() {
		win["a@10"] = sc.windows
		sc.ObserveLookahead(50 * Microsecond) // link with lower latency appears
		a.Schedule(190*Microsecond, func() { win["a@200"] = sc.windows })
	})
	b.ScheduleAt(Time(100*Microsecond), func() { win["b@100"] = sc.windows })
	// Later pair: under λ=200µs one window would hold both (a@460 <
	// 400+200); under the shrunk λ=50µs lane 1's horizon is 400+50 =
	// 450µs, so a@460 must wait for a later window.
	b.ScheduleAt(Time(400*Microsecond), func() { win["b@400"] = sc.windows })
	a.ScheduleAt(Time(460*Microsecond), func() { win["a@460"] = sc.windows })
	sc.RunUntil(Time(1 * Millisecond))

	if len(win) != 5 {
		t.Fatalf("fired %d events, want 5: %v", len(win), win)
	}
	if win["a@200"] != win["a@10"] {
		t.Errorf("shrink truncated the window in progress: a@200 in window %d, a@10 in window %d",
			win["a@200"], win["a@10"])
	}
	if win["a@460"] == win["b@400"] {
		t.Errorf("shrunk lookahead not applied to the next window: a@460 and b@400 both in window %d (λ=200µs grouping)",
			win["b@400"])
	}
}

// Cross-lane send landing exactly on the horizon under a genuinely
// parallel drain (4 lanes × 4 workers): the send must ride the mailbox,
// fire at exactly its requested time in a later window, and still sort
// before the receiver's own event at the same instant (sender shard 1 <
// receiver shard 2 in the (when, shard, seq) order).
func TestWindowedHorizonSendParallel(t *testing.T) {
	sc := NewShardedClock(4)
	views := make([]*Clock, 4) // shard i+1 on lane (i+1)%4
	for i := range views {
		views[i] = sc.NewShard()
	}
	const la = 100 * Microsecond
	sc.SetLookahead(la)
	sc.SetWorkers(4)

	logs := make([][]string, 4) // per-lane logs: no shared state
	src, dst := views[0], views[1]
	for i, v := range views {
		i, v := i, v
		v.ScheduleAt(Time(10*Microsecond), func() {
			logs[i] = append(logs[i], fmt.Sprintf("s%d@10", i+1))
			if v == src {
				// Exactly at the horizon 10µs + λ: the legal minimum.
				SendFrom(src, dst, v.Now().Add(la), func() {
					logs[1] = append(logs[1], fmt.Sprintf("mail@%d", dst.Now()/Time(Microsecond)))
				})
			}
		})
	}
	// The receiver's own event at the same instant: same when, larger
	// shard id than the sender ⇒ must run after the mailbox event.
	dst.ScheduleAt(Time(110*Microsecond), func() {
		logs[1] = append(logs[1], "own@110")
	})
	sc.RunUntil(Time(1 * Millisecond))

	want := "[s2@10 mail@110 own@110]"
	if fmt.Sprint(logs[1]) != want {
		t.Fatalf("receiver log = %v, want %v", logs[1], want)
	}
	if sc.Windows() < 2 {
		t.Fatalf("ran %d windows, want >= 2 (horizon event must be deferred past the barrier)", sc.Windows())
	}
}

// BenchmarkWindowedDrain measures the windowed path on an isolated
// multi-lane workload with no cross-lane traffic: 8 shards on 4 lanes,
// 4000 events per op, sequential drain (workers=1) so the number is the
// drain loop itself, not pool scheduling. Measures 110 allocs/op and
// 415 KB/op — identical to the same workload on the ladder path (111
// allocs/op; all wheel-slab growth), while running ~10% faster because
// the window drain pops each lane's run back to back instead of paying
// per-event tournament selection.
func BenchmarkWindowedDrain(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := NewShardedClock(4)
		views := make([]*Clock, 8)
		for j := range views {
			views[j] = sc.NewShard()
		}
		sc.SetLookahead(100 * Microsecond)
		sc.SetWorkers(1)
		for j := range views {
			j, v := j, views[j]
			n := 0
			var step func()
			step = func() {
				n++
				if n < 500 {
					v.Schedule(Duration(10+(n+j)%50)*Microsecond, step)
				}
			}
			v.Schedule(Microsecond, step)
		}
		sc.Run()
	}
}

// BenchmarkMailboxMerge stresses the cross-lane path: every event is a
// SendFrom to the opposite lane at exactly the lookahead horizon, so
// each window ends with an outbox flush and a sorted mailbox merge into
// the destination wheel. 2000 cross-lane events per op measure 45
// allocs/op (~0.02 allocs per event): the outbox, inbox and merge
// buffers are reused across windows, so steady-state merging is
// allocation-free.
func BenchmarkMailboxMerge(b *testing.B) {
	b.ReportAllocs()
	const la = 50 * Microsecond
	for i := 0; i < b.N; i++ {
		sc := NewShardedClock(2)
		a, c := sc.NewShard(), sc.NewShard()
		sc.SetLookahead(la)
		sc.SetWorkers(1)
		n := 0
		var ping, pong func()
		ping = func() {
			if n++; n < 2000 {
				SendFrom(a, c, a.Now().Add(la), pong)
			}
		}
		pong = func() {
			if n++; n < 2000 {
				SendFrom(c, a, c.Now().Add(la), ping)
			}
		}
		a.Schedule(Microsecond, ping)
		sc.Run()
	}
}

// BenchmarkWorkerHandoff measures the per-window cost of the persistent
// pool: 4 lanes in lockstep at one event per lane per window, workers=4,
// 500 windows per op — the time is dominated by wake/claim/done handoff,
// not event work. Spawning one goroutine per lane per window plus a
// sync.WaitGroup (the pre-pool implementation) measures 2564 allocs/op
// and 318 KB/op on this workload; the persistent pool holds it at 76
// allocs/op and 263 KB/op — all from engine setup and event scheduling;
// the steady-state handoff itself does not allocate.
func BenchmarkWorkerHandoff(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sc := NewShardedClock(4)
		views := make([]*Clock, 4)
		for j := range views {
			views[j] = sc.NewShard()
		}
		sc.SetLookahead(50 * Microsecond)
		sc.SetWorkers(4)
		for j := range views {
			v := views[j]
			n := 0
			var step func()
			step = func() {
				// All lanes step in lockstep: every window drains exactly
				// one (trivial) event per lane.
				if n++; n < 500 {
					v.Schedule(100*Microsecond, step)
				}
			}
			v.ScheduleAt(Time(10*Microsecond), step)
		}
		sc.Run()
	}
}
