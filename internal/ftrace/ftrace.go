// Package ftrace models the kernel's ftrace function-hook facility as
// used by NiLiCon (§V-B of the paper): a kernel module attaches hook
// functions to target kernel functions that may modify
// infrequently-changed container state (mounts, namespaces, cgroups,
// device files, memory-mapped files). When such a function runs, the hook
// fires and the checkpointing agent is signaled to invalidate its cache.
//
// In the simulation, kernel mutation paths call Registry.Fire with the
// target function's name; hooks registered for that name (or for all
// names) receive the event synchronously. Firing with no hooks attached
// has negligible cost, mirroring ftrace's near-zero overhead when
// disarmed.
package ftrace

// Event describes one invocation of a hooked kernel function.
type Event struct {
	// Fn is the kernel function name, e.g. "do_mount", "cgroup_attach_task".
	Fn string
	// PID is the process on whose behalf the function ran (0 if none).
	PID int
	// ContainerID identifies the container the process belongs to
	// (empty if the process is not containerized). Hook functions use it
	// to decide whether the event concerns the checkpointed container.
	ContainerID string
	// Detail carries function-specific context (mount point, cgroup path…).
	Detail string
}

// Hook is a callback attached to one or more kernel functions.
type Hook func(Event)

// HookID identifies a registered hook for removal.
type HookID int

// Registry dispatches events from kernel mutation paths to hooks. The
// zero value is ready to use.
type Registry struct {
	nextID  HookID
	byFn    map[string]map[HookID]Hook
	global  map[HookID]Hook
	fnOf    map[HookID]string
	counter int64
}

// Register attaches h to the kernel function fn. An empty fn attaches to
// every function (a global hook).
func (r *Registry) Register(fn string, h Hook) HookID {
	if h == nil {
		panic("ftrace: Register with nil hook")
	}
	r.init()
	id := r.nextID
	r.nextID++
	if fn == "" {
		r.global[id] = h
	} else {
		m := r.byFn[fn]
		if m == nil {
			m = make(map[HookID]Hook)
			r.byFn[fn] = m
		}
		m[id] = h
	}
	r.fnOf[id] = fn
	return id
}

// Unregister removes a hook; unknown IDs are ignored.
func (r *Registry) Unregister(id HookID) {
	if r.byFn == nil {
		return
	}
	fn, ok := r.fnOf[id]
	if !ok {
		return
	}
	delete(r.fnOf, id)
	if fn == "" {
		delete(r.global, id)
		return
	}
	delete(r.byFn[fn], id)
}

// Fire dispatches ev to hooks registered for ev.Fn and to global hooks.
// As with real ftrace, the hook runs synchronously in the context of the
// hooked function.
func (r *Registry) Fire(ev Event) {
	r.counter++
	if r.byFn == nil {
		return
	}
	for _, h := range r.byFn[ev.Fn] {
		h(ev)
	}
	for _, h := range r.global {
		h(ev)
	}
}

// Fired returns the total number of events fired (hooked or not); used by
// tests and by overhead accounting.
func (r *Registry) Fired() int64 { return r.counter }

// HookCount returns the number of currently registered hooks.
func (r *Registry) HookCount() int { return len(r.fnOf) }

func (r *Registry) init() {
	if r.byFn == nil {
		r.byFn = make(map[string]map[HookID]Hook)
		r.global = make(map[HookID]Hook)
		r.fnOf = make(map[HookID]string)
	}
}
