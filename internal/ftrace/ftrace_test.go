package ftrace

import "testing"

func TestFireDispatchesToMatchingHook(t *testing.T) {
	var r Registry
	var got []Event
	r.Register("do_mount", func(e Event) { got = append(got, e) })
	r.Fire(Event{Fn: "do_mount", PID: 7, Detail: "/data"})
	r.Fire(Event{Fn: "cgroup_attach_task", PID: 7})
	if len(got) != 1 {
		t.Fatalf("hook fired %d times, want 1", len(got))
	}
	if got[0].PID != 7 || got[0].Detail != "/data" {
		t.Fatalf("event = %+v", got[0])
	}
}

func TestGlobalHookSeesEverything(t *testing.T) {
	var r Registry
	n := 0
	r.Register("", func(Event) { n++ })
	r.Fire(Event{Fn: "a"})
	r.Fire(Event{Fn: "b"})
	if n != 2 {
		t.Fatalf("global hook fired %d times, want 2", n)
	}
}

func TestMultipleHooksSameFunction(t *testing.T) {
	var r Registry
	n := 0
	r.Register("sys_setns", func(Event) { n++ })
	r.Register("sys_setns", func(Event) { n++ })
	r.Fire(Event{Fn: "sys_setns"})
	if n != 2 {
		t.Fatalf("fired %d hooks, want 2", n)
	}
}

func TestUnregister(t *testing.T) {
	var r Registry
	n := 0
	id := r.Register("f", func(Event) { n++ })
	r.Fire(Event{Fn: "f"})
	r.Unregister(id)
	r.Fire(Event{Fn: "f"})
	if n != 1 {
		t.Fatalf("hook fired %d times, want 1 (unregistered after first)", n)
	}
	if r.HookCount() != 0 {
		t.Fatalf("HookCount = %d after unregister, want 0", r.HookCount())
	}
}

func TestUnregisterGlobal(t *testing.T) {
	var r Registry
	n := 0
	id := r.Register("", func(Event) { n++ })
	r.Unregister(id)
	r.Fire(Event{Fn: "x"})
	if n != 0 {
		t.Fatal("global hook fired after unregister")
	}
}

func TestUnregisterUnknownIDIgnored(t *testing.T) {
	var r Registry
	r.Unregister(HookID(99)) // must not panic on empty registry
	r.Register("f", func(Event) {})
	r.Unregister(HookID(99))
}

func TestFireOnEmptyRegistry(t *testing.T) {
	var r Registry
	r.Fire(Event{Fn: "anything"}) // must not panic
	if r.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", r.Fired())
	}
}

func TestRegisterNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Register(nil) did not panic")
		}
	}()
	var r Registry
	r.Register("f", nil)
}

func TestFiredCountsUnhooked(t *testing.T) {
	var r Registry
	for i := 0; i < 5; i++ {
		r.Fire(Event{Fn: "unhooked"})
	}
	if r.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", r.Fired())
	}
}
