package report

import (
	"testing"

	"nilicon/internal/workloads"
)

// TestPaperValuesCoverAllBenchmarks guards the transcription tables: a
// renamed benchmark must not silently drop out of the report.
func TestPaperValuesCoverAllBenchmarks(t *testing.T) {
	for _, name := range workloads.BenchmarkNames() {
		for label, m := range map[string]map[string]float64{
			"fig3-mc": paperFig3MC, "fig3-nl": paperFig3NL,
			"stop-mc": paperStopMC, "stop-nl": paperStopNL,
			"dirty-mc": paperDirtyMC, "dirty-nl": paperDirtyNL,
			"active": paperActive, "backup": paperBackup,
		} {
			if _, ok := m[name]; !ok {
				t.Errorf("paper table %s missing %s", label, name)
			}
		}
	}
	if len(paperTable1) != 7 {
		t.Errorf("table1 ladder has %d rows, want 7", len(paperTable1))
	}
	for _, b := range []string{"net", "redis"} {
		if _, ok := paperTable2[b]; !ok {
			t.Errorf("table2 missing %s", b)
		}
	}
	for _, b := range []string{"redis", "ssdb", "node", "lighttpd", "djcms"} {
		if _, ok := paperTable6[b]; !ok {
			t.Errorf("table6 missing %s", b)
		}
	}
}

// TestPaperValuesInternallyConsistent sanity-checks the transcription
// against relations stated in the paper's text.
func TestPaperValuesInternallyConsistent(t *testing.T) {
	// §I: overhead range 19%-67% for NiLiCon.
	for b, v := range paperFig3NL {
		if v < 0.19 || v > 0.68 {
			t.Errorf("paper NiLiCon overhead for %s = %v outside the abstract's 19-67%% range", b, v)
		}
	}
	// Table III: NiLiCon stop times always exceed MC's.
	for b := range paperStopNL {
		if paperStopNL[b] <= paperStopMC[b] {
			t.Errorf("%s: paper stop NL %v ≤ MC %v", b, paperStopNL[b], paperStopMC[b])
		}
	}
	// Table V: backup always far below active.
	for b := range paperBackup {
		if paperBackup[b] >= paperActive[b] {
			t.Errorf("%s: backup %v ≥ active %v", b, paperBackup[b], paperActive[b])
		}
	}
	// Table II totals equal their components.
	for b, p := range paperTable2 {
		if p[0]+p[1]+p[2]+p[3] != p[4] {
			t.Errorf("%s: table2 components sum to %v, total %v", b, p[0]+p[1]+p[2]+p[3], p[4])
		}
	}
}
