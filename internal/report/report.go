// Package report renders the paper-vs-measured comparison: it embeds
// the values the paper's evaluation reports (Tables I-VI, Figure 3, the
// §VII-C sweeps), runs the corresponding harness experiments, and emits
// a markdown report with deltas. `niliconctl report` writes it; the
// committed EXPERIMENTS.md contains one such run.
package report

import (
	"fmt"
	"strings"

	"nilicon/internal/chaos"
	"nilicon/internal/core"
	"nilicon/internal/harness"
	"nilicon/internal/simtime"
	"nilicon/internal/traffic"
)

// Paper values, transcribed from the evaluation section.
var (
	// Figure 3 overheads (fractions), paper order.
	paperFig3MC = map[string]float64{
		"swaptions": .1254, "streamcluster": .3244, "redis": .6732,
		"ssdb": .7185, "node": .3897, "lighttpd": .3018, "djcms": .5266,
	}
	paperFig3NL = map[string]float64{
		"swaptions": .1948, "streamcluster": .2596, "redis": .3371,
		"ssdb": .3183, "node": .5832, "lighttpd": .3767, "djcms": .5467,
	}
	// Table III stop times (ms).
	paperStopMC = map[string]float64{
		"swaptions": 2.4, "streamcluster": 3.0, "redis": 9.3,
		"ssdb": 3.0, "node": 9.4, "lighttpd": 4.8, "djcms": 4.5,
	}
	paperStopNL = map[string]float64{
		"swaptions": 5.1, "streamcluster": 7.4, "redis": 18.9,
		"ssdb": 10.4, "node": 38.2, "lighttpd": 25.0, "djcms": 19.1,
	}
	// Table III dirty pages.
	paperDirtyMC = map[string]float64{
		"swaptions": 212, "streamcluster": 462, "redis": 6200,
		"ssdb": 1107, "node": 6400, "lighttpd": 2900, "djcms": 2800,
	}
	paperDirtyNL = map[string]float64{
		"swaptions": 46, "streamcluster": 303, "redis": 6300,
		"ssdb": 590, "node": 5400, "lighttpd": 1600, "djcms": 3000,
	}
	// Table V utilization (cores).
	paperActive = map[string]float64{
		"swaptions": 3.96, "streamcluster": 3.91, "redis": 0.98,
		"ssdb": 1.70, "node": 1.01, "lighttpd": 3.95, "djcms": 1.41,
	}
	paperBackup = map[string]float64{
		"swaptions": 0.07, "streamcluster": 0.08, "redis": 0.28,
		"ssdb": 0.12, "node": 0.40, "lighttpd": 0.18, "djcms": 0.26,
	}
	// Table I ladder overheads (fractions).
	paperTable1 = []float64{19.40, 6.19, 0.84, 0.65, 0.53, 0.37, 0.31}
	// Table II recovery components (ms): restore, arp, tcp, other, total.
	paperTable2 = map[string][5]float64{
		"net":   {218, 28, 54, 7, 307},
		"redis": {314, 28, 23, 7, 372},
	}
	// Table VI latency (ms): stock, nilicon.
	paperTable6 = map[string][2]float64{
		"redis": {3.1, 36.9}, "ssdb": {93, 143}, "node": {2.4, 39.4},
		"lighttpd": {285, 542}, "djcms": {89, 245},
	}
)

// Build runs every experiment and renders the full comparison report.
func Build(rc harness.RunConfig) string {
	var b strings.Builder
	b.WriteString("# NiLiCon reproduction — paper vs measured\n\n")
	fmt.Fprintf(&b, "Seed %d, warmup %v, measure %v. See EXPERIMENTS.md for methodology.\n\n",
		rc.Seed, rc.Warmup, rc.Measure)

	fig3, _ := harness.RunFigure3(rc)
	b.WriteString("## Figure 3 — overhead (MC / NiLiCon)\n\n")
	b.WriteString("| benchmark | paper MC | measured MC | paper NL | measured NL | NL beats MC (paper→measured) |\n")
	b.WriteString("|---|---|---|---|---|---|\n")
	for _, r := range fig3 {
		pm, pn := paperFig3MC[r.Bench], paperFig3NL[r.Bench]
		fmt.Fprintf(&b, "| %s | %.2f%% | %.2f%% | %.2f%% | %.2f%% | %v→%v |\n",
			r.Bench, pm*100, r.MCOverhead*100, pn*100, r.NLOverhead*100,
			pn < pm, r.NLOverhead < r.MCOverhead)
	}

	b.WriteString("\n## Table III — stop time (ms) and dirty pages per epoch\n\n")
	b.WriteString("| benchmark | stop MC p/m | stop NL p/m | dpage MC p/m | dpage NL p/m |\n")
	b.WriteString("|---|---|---|---|---|\n")
	for _, r := range fig3 {
		fmt.Fprintf(&b, "| %s | %.1f / %.1f | %.1f / %.1f | %.0f / %.0f | %.0f / %.0f |\n",
			r.Bench,
			paperStopMC[r.Bench], float64(r.MCStop)/1e6,
			paperStopNL[r.Bench], float64(r.NLStop)/1e6,
			paperDirtyMC[r.Bench], r.MCDirty,
			paperDirtyNL[r.Bench], r.NLDirty)
	}

	b.WriteString("\n## Table IV — NiLiCon stop time / state size percentiles (measured)\n\n")
	b.WriteString("| benchmark | stop p10/p50/p90 (ms) | state p10/p50/p90 (MB) |\n")
	b.WriteString("|---|---|---|\n")
	for _, r := range fig3 {
		n := r.NLRes
		fmt.Fprintf(&b, "| %s | %.1f / %.1f / %.1f | %.2f / %.2f / %.2f |\n",
			r.Bench, n.StopP10*1000, n.StopP50*1000, n.StopP90*1000,
			n.StateP10/(1<<20), n.StateP50/(1<<20), n.StateP90/(1<<20))
	}

	b.WriteString("\n## Table V — core utilization (paper/measured)\n\n")
	b.WriteString("| benchmark | active p/m | backup p/m |\n")
	b.WriteString("|---|---|---|\n")
	for _, r := range fig3 {
		fmt.Fprintf(&b, "| %s | %.2f / %.2f | %.2f / %.2f |\n",
			r.Bench, paperActive[r.Bench], r.Stock.ActiveUtil,
			paperBackup[r.Bench], r.NLRes.BackupUtil)
	}

	t1, _ := harness.RunTable1(rc)
	b.WriteString("\n## Table I — optimization ladder (streamcluster overhead)\n\n")
	b.WriteString("| step | paper | measured | stop (measured) |\n|---|---|---|---|\n")
	for i, r := range t1 {
		fmt.Fprintf(&b, "| %s | %.0f%% | %.0f%% | %.1fms |\n",
			r.Name, paperTable1[i]*100, r.Overhead*100, float64(r.StopMean)/1e6)
	}

	t2, _ := harness.RunTable2(rc)
	b.WriteString("\n## Table II — recovery latency (ms, paper/measured)\n\n")
	b.WriteString("| benchmark | restore | arp | tcp | other | total | detection (measured) |\n")
	b.WriteString("|---|---|---|---|---|---|---|\n")
	for _, r := range t2 {
		p := paperTable2[r.Bench]
		_ = r.ClientGap
		total := float64(r.Restore+r.ARP+r.TCP+r.Other) / 1e6
		fmt.Fprintf(&b, "| %s | %.0f / %.0f | %.0f / %.0f | %.0f / %.0f | %.0f / %.0f | %.0f / %.0f | %.0f |\n",
			r.Bench,
			p[0], float64(r.Restore)/1e6,
			p[1], float64(r.ARP)/1e6,
			p[2], float64(r.TCP)/1e6,
			p[3], float64(r.Other)/1e6,
			p[4], total,
			float64(r.Detection)/1e6)
	}

	t6, _ := harness.RunTable6(rc)
	b.WriteString("\n## Table VI — single-client latency (ms, paper/measured)\n\n")
	b.WriteString("| benchmark | stock | nilicon | added delay (paper/measured) |\n|---|---|---|---|\n")
	for _, r := range t6 {
		p := paperTable6[r.Bench]
		fmt.Fprintf(&b, "| %s | %.1f / %.1f | %.1f / %.1f | %.1f / %.1f |\n",
			r.Bench,
			p[0], float64(r.Stock)/1e6,
			p[1], float64(r.NiLiCon)/1e6,
			p[1]-p[0], float64(r.NiLiCon-r.Stock)/1e6)
	}

	val, _ := harness.RunValidation([]string{"diskstress", "netstress", "redis", "ssdb", "swaptions"}, 2, 8*simtime.Second, rc.Seed)
	passed, total := 0, 0
	for _, v := range val {
		total++
		if v.Passed {
			passed++
		}
	}
	fmt.Fprintf(&b, "\n## §VII-A validation\n\npaper: 100%% recovery (50×60s per benchmark); measured: %d/%d passed (2×8s per benchmark; use `niliconctl validate -runs 50 -runlen 60s` for the full protocol).\n", passed, total)

	st, _ := harness.RunScaleThreads([]int{1, 4, 32}, rc)
	sc, _ := harness.RunScaleClients([]int{2, 32, 128}, rc)
	sp, _ := harness.RunScaleProcs([]int{1, 4, 8}, rc)
	b.WriteString("\n## §VII-C scalability (measured)\n\n")
	fmt.Fprintf(&b, "streamcluster threads 1→32: %.0f%% → %.0f%% (paper 23%%→52%%)\n\n", st[0].Overhead*100, st[len(st)-1].Overhead*100)
	fmt.Fprintf(&b, "lighttpd clients 2→128: %.0f%% → %.0f%% (paper ≈34%%→45%%)\n\n", sc[0].Overhead*100, sc[len(sc)-1].Overhead*100)
	fmt.Fprintf(&b, "lighttpd processes 1→8: %.0f%% → %.0f%% (paper 23%%→63%%)\n", sp[0].Overhead*100, sp[len(sp)-1].Overhead*100)

	b.WriteString("\n## Client-observed SLO under failover (DESIGN.md §14)\n\n")
	b.WriteString("HyCoR-style client-centric judgment (PAPERS.md): a zipf trace replayed open-loop through a mid-run primary kill, p99.9 judged per 100ms window with limiting-factor attribution.\n\n")
	slo := runTrafficSLO(rc.Seed)
	if slo == nil {
		b.WriteString("(traffic campaign produced no SLO report)\n")
	} else {
		fmt.Fprintf(&b, "```\n%s\n%s\n```\n", slo.Line(), slo.AttributionLine())
	}

	return b.String()
}

// runTrafficSLO runs the report's single trace-replay campaign: zipf
// arrivals outlasting the fault window so the terminal kill lands
// mid-trace, with transient events disabled so the failover is the only
// disruption the attribution can name.
func runTrafficSLO(seed int64) *traffic.Report {
	cfg, err := traffic.Profile("zipf", seed)
	if err != nil {
		return nil
	}
	cfg.Clients = 8
	cfg.Rate = 600
	cfg.Duration = 2500 * simtime.Millisecond
	cfg.SlowFrac = 0
	res := chaos.VerifySeed(chaos.Config{
		Seed: seed, Opts: core.AllOpts(), OptName: "report-traffic",
		Duration: 1500 * simtime.Millisecond, Terminal: chaos.TerminalKill,
		Events: -1, Traffic: traffic.Synthesize(cfg),
	})
	return res.SLO
}
