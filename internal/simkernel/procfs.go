package simkernel

import "nilicon/internal/simtime"

// This file models the kernel interfaces CRIU uses to collect memory
// state, with their contrasting costs (§V of the paper):
//
//   - /proc/pid/smaps: formatted text, includes expensive per-page
//     statistics checkpointing does not need — slow (causes (2) and (3)).
//   - netlink task-diag: binary VMA dump — fast (the CRIU developers'
//     kernel patch, which NiLiCon applies).
//   - /proc/pid/clear_refs + /proc/pid/pagemap: soft-dirty tracking for
//     incremental checkpoints (§II-B).

// VMAInfo is the per-VMA record either interface returns.
type VMAInfo struct {
	Start, End uint64
	Prot       Prot
	Path       string
	FileOff    uint64
	// ResidentPages and DirtyPages are the page statistics smaps
	// generates whether or not the reader needs them.
	ResidentPages int
	DirtyPages    int
}

func (k *Kernel) vmaInfos(p *Process, withStats bool) []VMAInfo {
	vmas := p.Mem.VMAs()
	out := make([]VMAInfo, 0, len(vmas))
	for _, v := range vmas {
		info := VMAInfo{Start: v.Start, End: v.End, Prot: v.Prot, Path: v.Path, FileOff: v.FileOff}
		if withStats {
			for pn := v.Start / PageSize; pn < v.End/PageSize; pn++ {
				if pg := p.Mem.pages[pn]; pg != nil {
					info.ResidentPages++
					if pg.SoftDirty {
						info.DirtyPages++
					}
				}
			}
		}
		out = append(out, info)
	}
	return out
}

// ReadSmaps reads /proc/pid/smaps: every VMA with full page statistics,
// rendered as text and parsed back — the real textual round trip the
// paper's cause (3) complains about (the virtual-time cost models the
// kernel-side generation; the render/parse here is the userspace side).
func (k *Kernel) ReadSmaps(p *Process) []VMAInfo {
	out, err := ParseSmaps(k.SmapsText(p))
	if err != nil {
		panic("simkernel: smaps round trip failed: " + err.Error())
	}
	cost := scaleDur(k.Costs.SmapsPerVMA, len(out))
	cost += scaleDur(k.Costs.SmapsPerPage, p.Mem.ResidentPages())
	k.ChargeSyscall(cost)
	return out
}

// TaskDiagVMAs reads the VMA list through the netlink task-diag
// interface: binary records, no page statistics. Cost: per-VMA only.
func (k *Kernel) TaskDiagVMAs(p *Process) []VMAInfo {
	out := k.vmaInfos(p, false)
	k.ChargeSyscall(scaleDur(k.Costs.NetlinkPerVMA, len(out)))
	return out
}

// ClearRefs writes "4" to /proc/pid/clear_refs, clearing the soft-dirty
// bits so tracking restarts for the next epoch.
func (k *Kernel) ClearRefs(p *Process) {
	k.ChargeSyscall(scaleDur(k.Costs.ClearRefsPerPage, p.Mem.ResidentPages()))
	p.Mem.ClearSoftDirtyBits()
}

// ReadPagemap scans /proc/pid/pagemap and returns the page numbers whose
// soft-dirty bit is set. Cost is proportional to resident pages, matching
// the paper's 49K pages → 1441 µs / 111K pages → 2887 µs measurements.
func (k *Kernel) ReadPagemap(p *Process) []uint64 {
	k.ChargeSyscall(scaleDur(k.Costs.PagemapPerPage, p.Mem.ResidentPages()))
	return p.Mem.DirtyPageNumbers()
}

// scaleDur multiplies a per-unit cost by a count.
func scaleDur(d simtime.Duration, n int) simtime.Duration {
	return d * simtime.Duration(n)
}
