package simkernel

// NamespaceKind enumerates the Linux namespace types containers use.
type NamespaceKind int

// Namespace kinds.
const (
	NSPID NamespaceKind = iota
	NSNet
	NSMount
	NSUTS
	NSIPC
	NSUser
)

var nsKindNames = [...]string{"pid", "net", "mnt", "uts", "ipc", "user"}

func (k NamespaceKind) String() string {
	if int(k) < len(nsKindNames) {
		return nsKindNames[k]
	}
	return "ns?"
}

// Namespace is one kernel namespace instance.
type Namespace struct {
	Kind NamespaceKind
	ID   int
	// Extra holds kind-specific configuration (hostname for UTS,
	// interface config for net, ...).
	Extra map[string]string
}

// NamespaceSet is the full set a container owns.
type NamespaceSet struct {
	PID, Net, Mount, UTS, IPC, User *Namespace
}

// NewNamespaceSet creates fresh namespaces of every kind, firing the
// unshare hook (namespace creation/modification invalidates the cache).
func (k *Kernel) NewNamespaceSet(pid int, containerID string) *NamespaceSet {
	mk := func(kind NamespaceKind) *Namespace {
		return &Namespace{Kind: kind, ID: k.AllocNamespaceID(), Extra: make(map[string]string)}
	}
	ns := &NamespaceSet{
		PID: mk(NSPID), Net: mk(NSNet), Mount: mk(NSMount),
		UTS: mk(NSUTS), IPC: mk(NSIPC), User: mk(NSUser),
	}
	k.Trace.Fire(ftraceEvent("sys_unshare", pid, containerID, "all"))
	return ns
}

// All returns the namespaces in a fixed order.
func (ns *NamespaceSet) All() []*Namespace {
	return []*Namespace{ns.PID, ns.Net, ns.Mount, ns.UTS, ns.IPC, ns.User}
}

// SetExtra records kind-specific configuration, firing the setns-family
// hook so the cached namespace state is invalidated.
func (k *Kernel) SetNamespaceExtra(ns *Namespace, pid int, containerID, key, value string) {
	ns.Extra[key] = value
	k.Trace.Fire(ftraceEvent("sys_setns", pid, containerID, ns.Kind.String()+":"+key))
}

// Mount is one mount-table entry.
type Mount struct {
	Source  string
	Target  string
	FSType  string
	Options string
}

// MountTable is a mount namespace's table.
type MountTable struct {
	k      *Kernel
	mounts []Mount
}

// NewMountTable returns an empty mount table.
func (k *Kernel) NewMountTable() *MountTable { return &MountTable{k: k} }

// Mount adds an entry, firing the do_mount hook.
func (mt *MountTable) Mount(m Mount, pid int, containerID string) {
	mt.mounts = append(mt.mounts, m)
	mt.k.Trace.Fire(ftraceEvent("do_mount", pid, containerID, m.Target))
}

// Unmount removes the entry with the given target; missing targets are a
// no-op. Fires the umount hook.
func (mt *MountTable) Unmount(target string, pid int, containerID string) {
	for i, m := range mt.mounts {
		if m.Target == target {
			mt.mounts = append(mt.mounts[:i], mt.mounts[i+1:]...)
			mt.k.Trace.Fire(ftraceEvent("sys_umount", pid, containerID, target))
			return
		}
	}
}

// Mounts returns a copy of the table.
func (mt *MountTable) Mounts() []Mount {
	out := make([]Mount, len(mt.mounts))
	copy(out, mt.mounts)
	return out
}

// DeviceFile is a device node visible inside the container.
type DeviceFile struct {
	Path         string
	Major, Minor int
}

// NamespaceSnapshot is the checkpointed namespace information.
type NamespaceSnapshot struct {
	Kind  NamespaceKind
	ID    int
	Extra map[string]string
}

// CollectNamespaces gathers namespace information through the slow
// kernel interface; the paper measures this at up to 100 ms (§I).
func (k *Kernel) CollectNamespaces(ns *NamespaceSet) []NamespaceSnapshot {
	k.Charge(k.Costs.NamespaceCollect)
	var out []NamespaceSnapshot
	for _, n := range ns.All() {
		extra := make(map[string]string, len(n.Extra))
		for kk, v := range n.Extra {
			extra[kk] = v
		}
		out = append(out, NamespaceSnapshot{Kind: n.Kind, ID: n.ID, Extra: extra})
	}
	return out
}

// CollectMounts gathers the mount table, charging the walk cost.
func (k *Kernel) CollectMounts(mt *MountTable) []Mount {
	k.Charge(k.Costs.MountCollect)
	return mt.Mounts()
}

// CollectDevices gathers device-file state, charging the collection cost.
func (k *Kernel) CollectDevices(devs []DeviceFile) []DeviceFile {
	k.Charge(k.Costs.DeviceCollect)
	out := make([]DeviceFile, len(devs))
	copy(out, devs)
	return out
}
