// Package simkernel is a simulated Linux kernel: processes with threads,
// byte-addressable virtual memory with soft-dirty and write-protect dirty
// tracking, file-descriptor tables, control groups with cpuacct and
// freezer, namespaces and mount tables, and the checkpoint-relevant
// kernel interfaces (procfs smaps/pagemap/clear_refs, netlink task-diag,
// freezer, per-thread state retrieval).
//
// The package has two layers of fidelity (DESIGN.md §4): functional —
// real data structures whose contents checkpoint/restore must preserve —
// and timing — every kernel interface charges a calibrated virtual-time
// cost to the active Meter, so that NiLiCon's stop time and runtime
// overhead emerge from the same code paths the paper describes.
package simkernel

import (
	"fmt"

	"nilicon/internal/ftrace"
	"nilicon/internal/simtime"
)

// Kernel is one host's simulated kernel. All methods are single-threaded:
// the simulation runs on one event loop.
type Kernel struct {
	Clock *simtime.Clock
	Costs *Costs
	// Trace is the ftrace hook registry; kernel mutation paths fire
	// events through it (see package ftrace).
	Trace ftrace.Registry

	nextPID int
	nextNS  int
	procs   map[int]*Process
	meter   *Meter
}

// NewKernel creates a kernel bound to the given clock, using the default
// cost model.
func NewKernel(clock *simtime.Clock) *Kernel {
	if clock == nil {
		panic("simkernel: NewKernel with nil clock")
	}
	return &Kernel{
		Clock:   clock,
		Costs:   DefaultCosts(),
		nextPID: 1,
		nextNS:  1,
		procs:   make(map[int]*Process),
	}
}

// Meter accumulates the virtual-time cost of a sequence of kernel
// operations — typically one checkpoint's state collection. Meters nest;
// the innermost active meter receives charges.
type Meter struct {
	total simtime.Duration
	k     *Kernel
	prev  *Meter
	done  bool
}

// StartMeter begins accumulating kernel-operation costs.
func (k *Kernel) StartMeter() *Meter {
	m := &Meter{k: k, prev: k.meter}
	k.meter = m
	return m
}

// Stop ends accumulation and returns the total accumulated cost. Stopping
// an already-stopped meter returns the same total and is otherwise a
// no-op. If an inner meter is still active the totals propagate outward
// when that meter stops.
func (m *Meter) Stop() simtime.Duration {
	if m.done {
		return m.total
	}
	m.done = true
	if m.k.meter == m {
		m.k.meter = m.prev
	}
	if m.prev != nil {
		m.prev.total += m.total
	}
	return m.total
}

// Total returns the cost accumulated so far.
func (m *Meter) Total() simtime.Duration { return m.total }

// Charge adds d to the active meter, if any. Kernel-internal code calls
// this for every modeled operation; charges issued with no active meter
// are intentionally dropped (they represent background kernel work whose
// cost the experiment does not measure).
func (k *Kernel) Charge(d simtime.Duration) {
	if k.meter != nil {
		k.meter.total += d
	}
}

// ChargeSyscall charges the fixed syscall entry/exit cost plus extra.
func (k *Kernel) ChargeSyscall(extra simtime.Duration) {
	k.Charge(k.Costs.SyscallBase + extra)
}

// NewProcess creates a process with one initial thread and an empty
// address space, belonging to the given container (empty for host
// processes).
func (k *Kernel) NewProcess(name, containerID string) *Process {
	p := &Process{
		PID:         k.nextPID,
		Name:        name,
		ContainerID: containerID,
		k:           k,
		FDs:         make(map[int]*FD),
		nextFD:      3, // 0,1,2 reserved for stdio
		Cwd:         "/",
	}
	k.nextPID++
	p.Mem = NewAddressSpace(k)
	p.NewThread()
	k.procs[p.PID] = p
	return p
}

// Process returns the process with the given PID, or nil.
func (k *Kernel) Process(pid int) *Process { return k.procs[pid] }

// Processes returns all live processes in PID order.
func (k *Kernel) Processes() []*Process {
	out := make([]*Process, 0, len(k.procs))
	for pid := 1; pid < k.nextPID; pid++ {
		if p, ok := k.procs[pid]; ok {
			out = append(out, p)
		}
	}
	return out
}

// Exit terminates a process and removes it from the process table.
func (k *Kernel) Exit(pid int) {
	p := k.procs[pid]
	if p == nil {
		return
	}
	p.Exited = true
	for _, t := range p.Threads {
		t.State = ThreadExited
	}
	delete(k.procs, pid)
}

// AllocNamespaceID returns a fresh namespace identifier.
func (k *Kernel) AllocNamespaceID() int {
	id := k.nextNS
	k.nextNS++
	return id
}

func (k *Kernel) String() string {
	return fmt.Sprintf("simkernel{procs=%d, t=%v}", len(k.procs), k.Clock.Now())
}
