package simkernel

import "nilicon/internal/simtime"

// Costs is the calibrated virtual-time cost model for kernel interfaces.
// Values are taken from numbers quoted in the NiLiCon paper where
// available (per-interface aggregates were divided by the workload sizes
// the paper reports); the remaining values are fitted so that aggregate
// stop times land near Table III. See DESIGN.md §1 and EXPERIMENTS.md for
// the calibration table.
type Costs struct {
	// SyscallBase is the fixed cost of entering/leaving any system call.
	SyscallBase simtime.Duration

	// --- Memory management -------------------------------------------------

	// MinorFault is charged the first time a page is touched (demand
	// allocation).
	MinorFault simtime.Duration
	// SoftDirtyFault is charged at the first write to a page after the
	// soft-dirty bits were cleared (NiLiCon's runtime dirty tracking).
	SoftDirtyFault simtime.Duration
	// VMExit is charged at the first write to a write-protected page when
	// hypervisor-style tracking is enabled (MC's runtime dirty tracking).
	// The paper attributes MC's higher runtime overhead to VM exit/entry
	// (§VII-C), so VMExit >> SoftDirtyFault.
	VMExit simtime.Duration

	// --- procfs / netlink VMA collection (§V-D) -----------------------------

	// SmapsPerVMA is the per-VMA cost of reading /proc/pid/smaps,
	// including generating the formatted text.
	SmapsPerVMA simtime.Duration
	// SmapsPerPage is the per-resident-page cost of the page statistics
	// smaps computes but checkpointing does not need (cause (2) in §V).
	SmapsPerPage simtime.Duration
	// NetlinkPerVMA is the per-VMA cost of the binary task-diag dump.
	NetlinkPerVMA simtime.Duration

	// PagemapPerPage is the per-resident-page cost of scanning
	// /proc/pid/pagemap for soft-dirty bits. Paper: 49K pages → 1441 µs,
	// 111K pages → 2887 µs, i.e. ≈ 27 ns/page.
	PagemapPerPage simtime.Duration
	// ClearRefsPerPage is the per-resident-page cost of writing
	// /proc/pid/clear_refs to restart tracking.
	ClearRefsPerPage simtime.Duration

	// --- Page content transfer (§V-D) ---------------------------------------

	// PageCopyPipe is the per-page cost of moving page contents from the
	// parasite to the agent through a pipe (multiple syscalls per batch).
	PageCopyPipe simtime.Duration
	// PageCopyShared is the per-page cost with the shared-memory region.
	PageCopyShared simtime.Duration

	// --- Per-object state collection ---------------------------------------

	// CheckpointBase is the fixed per-checkpoint cost of the optimized
	// agent: coordinating the parasite, fdinfo parsing, image metadata,
	// and assorted small kernel interface reads that do not scale with
	// container size. Fitted so the smallest Table III stop time
	// (swaptions, 5.1 ms) is reproduced.
	CheckpointBase simtime.Duration
	// ParasiteInject is the per-process cost of mapping the parasite
	// code into a checkpointed process via ptrace (§II-B).
	ParasiteInject simtime.Duration
	// ThreadState is the cost of retrieving one thread's registers,
	// signal mask and scheduling policy. Paper §VII-C: 148 µs for 1
	// thread → 4 ms for 32 threads, ≈ 130 µs/thread.
	ThreadState simtime.Duration
	// FDEntry is the per-file-descriptor cost of collecting fd state.
	FDEntry simtime.Duration
	// StatFile is the cost of one stat() call, paid per memory-mapped
	// file when the mapped-file cache is disabled (cause (1) in §V).
	StatFile simtime.Duration
	// TimerEntry is the per-posix-timer collection cost.
	TimerEntry simtime.Duration

	// --- Socket repair mode --------------------------------------------------

	// SockRepairPerSocket is the cost of getting one TCP socket's repair
	// state (sequence numbers, queues). Paper §VII-C: 1.2 ms for ~8
	// sockets to 13 ms for 128 sockets ≈ 100 µs/socket.
	SockRepairPerSocket simtime.Duration
	// SockRepairPerKB is the additional cost per KiB of queued data.
	SockRepairPerKB simtime.Duration

	// --- Infrequently-modified state (§V-B) ----------------------------------
	// Paper: collecting these for streamcluster takes ≈160 ms total, with
	// namespace collection alone up to 100 ms (§I).

	// NamespaceCollect is the cost of collecting namespace information.
	NamespaceCollect simtime.Duration
	// MountCollect is the cost of walking the mount table.
	MountCollect simtime.Duration
	// CgroupCollect is the cost of collecting control-group configuration.
	CgroupCollect simtime.Duration
	// DeviceCollect is the cost of collecting device-file state.
	DeviceCollect simtime.Duration
	// CacheCheck is the cost of verifying the ftrace-backed cache is
	// still valid (one flag check per component).
	CacheCheck simtime.Duration

	// --- Freezer (§V-A) -------------------------------------------------------

	// FreezeSignal is the per-thread cost of delivering the virtual signal.
	FreezeSignal simtime.Duration
	// FreezeSettleUser is how long a thread running user code takes to
	// reach the frozen state.
	FreezeSettleUser simtime.Duration
	// FreezeSettleSyscall is the extra settle time for a thread that must
	// first be forced out of a system call (e.g. a memory-management
	// call between computation phases). This is what produces the
	// stop-time tail the paper observes for streamcluster (Table IV:
	// p90 ≈ 2× p50 with no growth in state size).
	FreezeSettleSyscall simtime.Duration
	// FreezeSleep is the fixed sleep of stock CRIU between issuing the
	// virtual signals and checking thread state (100 ms, §V-A).
	FreezeSleep simtime.Duration
	// FreezePollInterval is NiLiCon's polling granularity.
	FreezePollInterval simtime.Duration

	// --- Network input blocking (§V-C) ----------------------------------------

	// FirewallSetup is the per-epoch cost of installing+removing firewall
	// rules (stock CRIU input blocking): 7 ms.
	FirewallSetup simtime.Duration
	// PlugBlock is the cost of plugging/unplugging the qdisc: 43 µs.
	PlugBlock simtime.Duration

	// --- File-system cache (§III) ---------------------------------------------

	// FgetfcPerEntry is the per-DNC-entry cost of the new fgetfc syscall.
	FgetfcPerEntry simtime.Duration
	// FlushPerPage is the per-dirty-page cost of flushing the fs cache to
	// the NAS (stock CRIU behaviour, prohibitive at epoch frequency).
	FlushPerPage simtime.Duration

	// --- Delta-compressed replication wire format (DESIGN.md §8) --------------

	// PageHash is the cost of FNV-1a hashing one 4 KiB page (the content
	// tag on every encoded frame): ≈1 byte/cycle on the modeled core.
	PageHash simtime.Duration
	// PageDiff is the cost of one 4 KiB page-pair comparison: the XOR
	// diff scan when building a delta patch, or the byte-verification of
	// a dedup donor (vectorized, several bytes/cycle).
	PageDiff simtime.Duration
	// PageDeltaApply is the backup-side cost of applying a sparse XOR
	// patch to reconstruct a page.
	PageDeltaApply simtime.Duration

	// --- Restore ---------------------------------------------------------------

	// RestoreBase is the fixed cost of recreating the container skeleton
	// (namespaces, cgroups, mounts, process tree).
	RestoreBase simtime.Duration
	// RestorePerPage is the per-page cost of re-populating memory.
	RestorePerPage simtime.Duration
	// RestorePerSocket is the per-socket cost of repair-mode restore.
	RestorePerSocket simtime.Duration
	// RestorePerFD is the per-descriptor cost of reopening files.
	RestorePerFD simtime.Duration
	// RestoreFsPerEntry is the per-entry cost of replaying the fs cache
	// (pwrite for page cache, chown for inode cache).
	RestoreFsPerEntry simtime.Duration

	// --- State transfer ---------------------------------------------------------

	// CRIUForkSetup is the per-checkpoint cost of forking a fresh CRIU
	// process and rebuilding its view of the container (walking /proc,
	// re-opening interfaces, re-establishing parasite infrastructure).
	// NiLiCon's optimized CRIU keeps this infrastructure resident.
	// Fitted so the Table I "Basic implementation" rung lands near the
	// paper's 1940%.
	CRIUForkSetup simtime.Duration
	// ProxyPerMB is the extra copy cost per MiB when the stock CRIU proxy
	// processes intermediate the transfer (§V-A third optimization).
	ProxyPerMB simtime.Duration
	// ProxyFixed is the fixed per-checkpoint overhead of the proxies.
	ProxyFixed simtime.Duration
}

// DefaultCosts returns the calibrated cost model described in DESIGN.md.
func DefaultCosts() *Costs {
	return &Costs{
		SyscallBase: 600 * simtime.Nanosecond,

		MinorFault:     250 * simtime.Nanosecond,
		SoftDirtyFault: 350 * simtime.Nanosecond,
		VMExit:         600 * simtime.Nanosecond,

		SmapsPerVMA:   30 * simtime.Microsecond,
		SmapsPerPage:  80 * simtime.Nanosecond,
		NetlinkPerVMA: 2 * simtime.Microsecond,

		PagemapPerPage:   27 * simtime.Nanosecond,
		ClearRefsPerPage: 8 * simtime.Nanosecond,

		PageCopyPipe:   2 * simtime.Microsecond,
		PageCopyShared: 450 * simtime.Nanosecond,

		CheckpointBase: 3800 * simtime.Microsecond,
		ParasiteInject: 120 * simtime.Microsecond,
		ThreadState:    130 * simtime.Microsecond,
		FDEntry:        4 * simtime.Microsecond,
		StatFile:       8 * simtime.Microsecond,
		TimerEntry:     3 * simtime.Microsecond,

		SockRepairPerSocket: 100 * simtime.Microsecond,
		SockRepairPerKB:     900 * simtime.Nanosecond,

		NamespaceCollect: 100 * simtime.Millisecond,
		MountCollect:     15 * simtime.Millisecond,
		CgroupCollect:    40 * simtime.Millisecond,
		DeviceCollect:    5 * simtime.Millisecond,
		CacheCheck:       12 * simtime.Microsecond,

		FreezeSignal:        5 * simtime.Microsecond,
		FreezeSettleUser:    40 * simtime.Microsecond,
		FreezeSettleSyscall: 5 * simtime.Millisecond,
		FreezeSleep:         100 * simtime.Millisecond,
		FreezePollInterval:  50 * simtime.Microsecond,

		FirewallSetup: 7 * simtime.Millisecond,
		PlugBlock:     43 * simtime.Microsecond,

		FgetfcPerEntry: 2 * simtime.Microsecond,
		FlushPerPage:   18 * simtime.Microsecond,

		PageHash:       1200 * simtime.Nanosecond,
		PageDiff:       400 * simtime.Nanosecond,
		PageDeltaApply: 300 * simtime.Nanosecond,

		RestoreBase:       150 * simtime.Millisecond,
		RestorePerPage:    2500 * simtime.Nanosecond,
		RestorePerSocket:  180 * simtime.Microsecond,
		RestorePerFD:      25 * simtime.Microsecond,
		RestoreFsPerEntry: 5 * simtime.Microsecond,

		CRIUForkSetup: 300 * simtime.Millisecond,
		ProxyPerMB:    1200 * simtime.Microsecond,
		ProxyFixed:    700 * simtime.Microsecond,
	}
}
