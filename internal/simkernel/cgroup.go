package simkernel

import (
	"fmt"

	"nilicon/internal/simtime"
)

// Cgroup is a control group with the two controllers NiLiCon uses:
// cpuacct (the failure detector reads cpuacct.usage, §IV) and freezer
// (checkpointing pauses the container with virtual signals, §II-B).
type Cgroup struct {
	k    *Kernel
	Path string
	// Config models the control-group configuration knobs (limits,
	// devices, ...) that are part of the infrequently-modified state.
	Config map[string]string

	cpuUsage simtime.Duration
	frozen   bool
	members  []*Process
}

// NewCgroup creates a control group at the given path.
func (k *Kernel) NewCgroup(path string) *Cgroup {
	return &Cgroup{k: k, Path: path, Config: make(map[string]string)}
}

// AddProcess attaches a process (and all its threads) to the group,
// firing the cgroup_attach_task hook the state-change tracker watches.
func (cg *Cgroup) AddProcess(p *Process) {
	cg.members = append(cg.members, p)
	cg.k.Trace.Fire(ftraceEvent("cgroup_attach_task", p.PID, p.ContainerID, cg.Path))
}

// SetConfig updates a configuration knob, firing the corresponding hook
// (configuration changes invalidate the cached cgroup state).
func (cg *Cgroup) SetConfig(key, value string) {
	cg.Config[key] = value
	pid := 0
	ctr := ""
	if len(cg.members) > 0 {
		pid = cg.members[0].PID
		ctr = cg.members[0].ContainerID
	}
	cg.k.Trace.Fire(ftraceEvent("cgroup_file_write", pid, ctr, cg.Path+"/"+key))
}

// Members returns the attached processes.
func (cg *Cgroup) Members() []*Process { return cg.members }

// ChargeCPU accounts CPU time consumed by the group's tasks
// (cpuacct.usage).
func (cg *Cgroup) ChargeCPU(d simtime.Duration) {
	if d < 0 {
		panic("simkernel: negative CPU charge")
	}
	cg.cpuUsage += d
}

// CPUUsage returns the value of cpuacct.usage. Reading it is one cheap
// file read.
func (cg *Cgroup) CPUUsage() simtime.Duration {
	cg.k.ChargeSyscall(0)
	return cg.cpuUsage
}

// Frozen reports the freezer state.
func (cg *Cgroup) Frozen() bool { return cg.frozen }

// Freeze sends virtual signals to every thread in the group and returns
// the settle time: how long until the last thread is actually paused.
// Threads in user code pause quickly; threads inside system calls must be
// forced out first (§II-B). The caller (CRIU) decides how to wait —
// stock CRIU sleeps 100 ms, NiLiCon polls (§V-A).
func (cg *Cgroup) Freeze() simtime.Duration {
	if cg.frozen {
		return 0
	}
	cg.frozen = true
	var settle simtime.Duration
	for _, p := range cg.members {
		for _, t := range p.Threads {
			if t.State == ThreadExited {
				continue
			}
			cg.k.Charge(cg.k.Costs.FreezeSignal)
			s := cg.k.Costs.FreezeSettleUser
			if t.InSyscall {
				s += cg.k.Costs.FreezeSettleSyscall
			}
			if s > settle {
				settle = s
			}
			t.prevState = t.State
			t.State = ThreadFrozen
		}
	}
	return settle
}

// Thaw resumes every thread, restoring its pre-freeze state.
func (cg *Cgroup) Thaw() {
	if !cg.frozen {
		return
	}
	cg.frozen = false
	for _, p := range cg.members {
		for _, t := range p.Threads {
			if t.State == ThreadFrozen {
				t.State = t.prevState
			}
		}
	}
}

// AllFrozen reports whether every member thread has reached the frozen
// state; CRIU's poll loop checks this.
func (cg *Cgroup) AllFrozen() bool {
	for _, p := range cg.members {
		for _, t := range p.Threads {
			if t.State != ThreadFrozen && t.State != ThreadExited {
				return false
			}
		}
	}
	return true
}

// CgroupSnapshot is the checkpointed control-group configuration.
type CgroupSnapshot struct {
	Path   string
	Config map[string]string
	PIDs   []int
}

// CollectCgroup gathers the group's configuration, charging the full
// collection cost (part of the ≈160 ms infrequently-modified state the
// paper measures for streamcluster, §V-B).
func (k *Kernel) CollectCgroup(cg *Cgroup) CgroupSnapshot {
	k.Charge(k.Costs.CgroupCollect)
	cfg := make(map[string]string, len(cg.Config))
	for kk, v := range cg.Config {
		cfg[kk] = v
	}
	pids := make([]int, 0, len(cg.members))
	for _, p := range cg.members {
		pids = append(pids, p.PID)
	}
	return CgroupSnapshot{Path: cg.Path, Config: cfg, PIDs: pids}
}

func (cg *Cgroup) String() string {
	return fmt.Sprintf("cgroup{%s, frozen=%v, members=%d}", cg.Path, cg.frozen, len(cg.members))
}
