package simkernel

import (
	"testing"

	"nilicon/internal/ftrace"
	"nilicon/internal/simtime"
)

func TestNewProcessBasics(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("redis", "c1")
	if p.PID != 1 {
		t.Fatalf("first PID = %d, want 1", p.PID)
	}
	if len(p.Threads) != 1 {
		t.Fatalf("threads = %d, want 1 initial thread", len(p.Threads))
	}
	if k.Process(p.PID) != p {
		t.Fatal("process not registered")
	}
	q := k.NewProcess("other", "c1")
	if q.PID != 2 {
		t.Fatalf("second PID = %d, want 2", q.PID)
	}
}

func TestProcessesOrderedByPID(t *testing.T) {
	k := newTestKernel()
	for i := 0; i < 5; i++ {
		k.NewProcess("p", "")
	}
	procs := k.Processes()
	if len(procs) != 5 {
		t.Fatalf("len = %d", len(procs))
	}
	for i := 1; i < len(procs); i++ {
		if procs[i].PID <= procs[i-1].PID {
			t.Fatal("not PID-ordered")
		}
	}
}

func TestExitRemovesProcess(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	k.Exit(p.PID)
	if k.Process(p.PID) != nil {
		t.Fatal("exited process still in table")
	}
	if !p.Exited || p.MainThread().State != ThreadExited {
		t.Fatal("exit flags not set")
	}
	k.Exit(999) // unknown PID: no panic
}

func TestMeterAccumulates(t *testing.T) {
	k := newTestKernel()
	m := k.StartMeter()
	k.Charge(5 * simtime.Millisecond)
	k.Charge(3 * simtime.Millisecond)
	if got := m.Stop(); got != 8*simtime.Millisecond {
		t.Fatalf("meter = %v, want 8ms", got)
	}
}

func TestChargeWithoutMeterDropped(t *testing.T) {
	k := newTestKernel()
	k.Charge(time5())
	m := k.StartMeter()
	if m.Stop() != 0 {
		t.Fatal("meter saw charges issued before it started")
	}
}

func time5() simtime.Duration { return 5 * simtime.Millisecond }

func TestMetersNest(t *testing.T) {
	k := newTestKernel()
	outer := k.StartMeter()
	k.Charge(1 * simtime.Millisecond)
	inner := k.StartMeter()
	k.Charge(2 * simtime.Millisecond)
	if inner.Stop() != 2*simtime.Millisecond {
		t.Fatal("inner meter wrong")
	}
	k.Charge(4 * simtime.Millisecond)
	// Outer sees its own charges plus the inner total.
	if got := outer.Stop(); got != 7*simtime.Millisecond {
		t.Fatalf("outer = %v, want 7ms", got)
	}
}

func TestMeterDoubleStopIdempotent(t *testing.T) {
	k := newTestKernel()
	m := k.StartMeter()
	k.Charge(time5())
	a := m.Stop()
	b := m.Stop()
	if a != b {
		t.Fatal("double Stop changed total")
	}
	// After stop, charges are dropped.
	k.Charge(time5())
	if m.Total() != a {
		t.Fatal("stopped meter still accumulating")
	}
}

func TestChargeSyscallIncludesBase(t *testing.T) {
	k := newTestKernel()
	m := k.StartMeter()
	k.ChargeSyscall(0)
	if m.Stop() != k.Costs.SyscallBase {
		t.Fatal("syscall base cost missing")
	}
}

func TestFDTable(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	f1 := p.OpenFD(FDFile, "/data/log")
	f2 := p.OpenFD(FDSocket, "")
	if f1.Num != 3 || f2.Num != 4 {
		t.Fatalf("fd numbers = %d,%d, want 3,4 (stdio reserved)", f1.Num, f2.Num)
	}
	p.CloseFD(f1.Num)
	list := p.FDList()
	if len(list) != 1 || list[0] != f2 {
		t.Fatalf("FDList after close = %v", list)
	}
	p.CloseFD(99) // no-op
}

func TestOpenDeviceFiresHook(t *testing.T) {
	k := newTestKernel()
	var events []ftrace.Event
	k.Trace.Register("chrdev_open", func(e ftrace.Event) { events = append(events, e) })
	p := k.NewProcess("p", "ctr")
	p.OpenFD(FDDevice, "/dev/null")
	p.OpenFD(FDFile, "/etc/hosts") // must not fire
	if len(events) != 1 || events[0].Detail != "/dev/null" || events[0].ContainerID != "ctr" {
		t.Fatalf("events = %+v", events)
	}
}

func TestCollectFDsChargesPerEntry(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	for i := 0; i < 10; i++ {
		p.OpenFD(FDFile, "/f")
	}
	m := k.StartMeter()
	snaps := k.CollectFDs(p)
	cost := m.Stop()
	if len(snaps) != 10 {
		t.Fatalf("snapshots = %d", len(snaps))
	}
	if cost != 10*k.Costs.FDEntry {
		t.Fatalf("cost = %v, want %v", cost, 10*k.Costs.FDEntry)
	}
}

func TestGetThreadStateChargesAndCopies(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	th := p.MainThread()
	th.Regs.PC = 0xdead
	th.SigMask = 0xff
	m := k.StartMeter()
	s := k.GetThreadState(th)
	if m.Stop() != k.Costs.ThreadState {
		t.Fatal("thread-state cost not charged")
	}
	if s.Regs.PC != 0xdead || s.SigMask != 0xff {
		t.Fatalf("snapshot = %+v", s)
	}
}

func TestCollectTimers(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	p.AddTimer(30*simtime.Millisecond, 10*simtime.Millisecond)
	m := k.StartMeter()
	ts := k.CollectTimers(p)
	if m.Stop() != k.Costs.TimerEntry {
		t.Fatal("timer cost not charged")
	}
	if len(ts) != 1 || ts[0].Interval != 30*simtime.Millisecond {
		t.Fatalf("timers = %+v", ts)
	}
}

func TestStatMappedFilesCost(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	p.Mem.Mmap(PageSize, ProtRead|ProtExec, "/lib/a.so", p.PID, "")
	p.Mem.Mmap(PageSize, ProtRead, "/lib/a.so", p.PID, "")
	p.Mem.Mmap(PageSize, ProtRead, "/lib/b.so", p.PID, "")
	m := k.StartMeter()
	files := k.StatMappedFiles(p)
	cost := m.Stop()
	if len(files) != 2 {
		t.Fatalf("files = %v", files)
	}
	want := 2 * (k.Costs.SyscallBase + k.Costs.StatFile)
	if cost != want {
		t.Fatalf("cost = %v, want %v", cost, want)
	}
}

func TestSmapsVsNetlinkCosts(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	v := p.Mem.Mmap(1000*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	_ = p.Mem.Touch(v, 0, 1000, 1)
	for i := 0; i < 49; i++ {
		p.Mem.Mmap(PageSize, ProtRead, "", p.PID, "")
	}

	m := k.StartMeter()
	smaps := k.ReadSmaps(p)
	smapsCost := m.Stop()

	m = k.StartMeter()
	nl := k.TaskDiagVMAs(p)
	nlCost := m.Stop()

	if len(smaps) != 50 || len(nl) != 50 {
		t.Fatalf("VMA counts: smaps=%d netlink=%d", len(smaps), len(nl))
	}
	if smapsCost <= nlCost*5 {
		t.Fatalf("smaps (%v) should be much slower than netlink (%v)", smapsCost, nlCost)
	}
	if smaps[0].ResidentPages != 1000 {
		t.Fatalf("smaps resident = %d, want 1000", smaps[0].ResidentPages)
	}
	if nl[0].ResidentPages != 0 {
		t.Fatal("netlink should not compute page statistics")
	}
}

func TestPagemapReturnsDirtyAndCharges(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("p", "")
	p.Mem.SetSoftDirtyTracking(true)
	v := p.Mem.Mmap(100*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	_ = p.Mem.Touch(v, 0, 100, 1)
	k.ClearRefs(p)
	_ = p.Mem.Touch(v, 5, 7, 2)
	m := k.StartMeter()
	dirty := k.ReadPagemap(p)
	cost := m.Stop()
	if len(dirty) != 7 {
		t.Fatalf("dirty = %d, want 7", len(dirty))
	}
	want := k.Costs.SyscallBase + 100*k.Costs.PagemapPerPage
	if cost != want {
		t.Fatalf("pagemap cost = %v, want %v (scan is per resident page)", cost, want)
	}
}

func TestNamespaceCollection(t *testing.T) {
	k := newTestKernel()
	ns := k.NewNamespaceSet(1, "c1")
	k.SetNamespaceExtra(ns.UTS, 1, "c1", "hostname", "ctr-1")
	m := k.StartMeter()
	snaps := k.CollectNamespaces(ns)
	cost := m.Stop()
	if cost != k.Costs.NamespaceCollect {
		t.Fatalf("cost = %v, want %v", cost, k.Costs.NamespaceCollect)
	}
	if len(snaps) != 6 {
		t.Fatalf("namespaces = %d, want 6", len(snaps))
	}
	found := false
	for _, s := range snaps {
		if s.Kind == NSUTS && s.Extra["hostname"] == "ctr-1" {
			found = true
		}
	}
	if !found {
		t.Fatal("UTS extra not collected")
	}
}

func TestNamespaceSnapshotIsDeepCopy(t *testing.T) {
	k := newTestKernel()
	ns := k.NewNamespaceSet(1, "c1")
	snaps := k.CollectNamespaces(ns)
	snaps[0].Extra["mutated"] = "yes"
	if _, ok := ns.All()[0].Extra["mutated"]; ok {
		t.Fatal("snapshot aliases live namespace state")
	}
}

func TestMountTableHooks(t *testing.T) {
	k := newTestKernel()
	var fired []string
	k.Trace.Register("do_mount", func(e ftrace.Event) { fired = append(fired, "mount:"+e.Detail) })
	k.Trace.Register("sys_umount", func(e ftrace.Event) { fired = append(fired, "umount:"+e.Detail) })
	mt := k.NewMountTable()
	mt.Mount(Mount{Source: "tmpfs", Target: "/tmp", FSType: "tmpfs"}, 1, "c1")
	mt.Mount(Mount{Source: "/dev/sda", Target: "/data", FSType: "ext4"}, 1, "c1")
	mt.Unmount("/tmp", 1, "c1")
	mt.Unmount("/nonexistent", 1, "c1")
	if len(mt.Mounts()) != 1 {
		t.Fatalf("mounts = %v", mt.Mounts())
	}
	if len(fired) != 3 {
		t.Fatalf("hooks fired: %v", fired)
	}
}

func TestCgroupFreezeThaw(t *testing.T) {
	k := newTestKernel()
	cg := k.NewCgroup("/docker/c1")
	p := k.NewProcess("app", "c1")
	p.NewThread()
	p.Threads[1].InSyscall = true
	cg.AddProcess(p)

	settle := cg.Freeze()
	if settle != k.Costs.FreezeSettleUser+k.Costs.FreezeSettleSyscall {
		t.Fatalf("settle = %v (syscall thread should dominate)", settle)
	}
	if !cg.AllFrozen() || !cg.Frozen() {
		t.Fatal("not frozen after Freeze")
	}
	if cg.Freeze() != 0 {
		t.Fatal("double freeze should be a no-op")
	}
	cg.Thaw()
	if cg.Frozen() || p.Threads[0].State != ThreadRunning {
		t.Fatal("thaw did not restore state")
	}
	cg.Thaw() // idempotent
}

func TestCgroupCPUAccounting(t *testing.T) {
	k := newTestKernel()
	cg := k.NewCgroup("/c")
	cg.ChargeCPU(10 * simtime.Millisecond)
	cg.ChargeCPU(5 * simtime.Millisecond)
	if cg.CPUUsage() != 15*simtime.Millisecond {
		t.Fatalf("cpuacct = %v", cg.CPUUsage())
	}
}

func TestCgroupNegativeChargePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative CPU charge did not panic")
		}
	}()
	k := newTestKernel()
	k.NewCgroup("/c").ChargeCPU(-1)
}

func TestCgroupConfigHook(t *testing.T) {
	k := newTestKernel()
	n := 0
	k.Trace.Register("cgroup_file_write", func(ftrace.Event) { n++ })
	cg := k.NewCgroup("/c")
	cg.SetConfig("memory.limit_in_bytes", "4294967296")
	if n != 1 {
		t.Fatal("config write hook not fired")
	}
	snap := k.CollectCgroup(cg)
	if snap.Config["memory.limit_in_bytes"] != "4294967296" {
		t.Fatalf("snapshot config = %v", snap.Config)
	}
}

func TestCollectDevicesCopies(t *testing.T) {
	k := newTestKernel()
	devs := []DeviceFile{{Path: "/dev/null", Major: 1, Minor: 3}}
	m := k.StartMeter()
	got := k.CollectDevices(devs)
	if m.Stop() != k.Costs.DeviceCollect {
		t.Fatal("device collect cost missing")
	}
	got[0].Path = "/dev/zero"
	if devs[0].Path != "/dev/null" {
		t.Fatal("CollectDevices aliased input")
	}
}

func TestInfrequentStateTotalMatchesPaper(t *testing.T) {
	// §V-B: obtaining cgroups+namespaces+mounts+devices+mapped files for
	// streamcluster takes ≈160 ms. Verify the modeled components sum to
	// within 15% of that.
	k := newTestKernel()
	p := k.NewProcess("streamcluster", "c1")
	for i := 0; i < 30; i++ {
		p.Mem.Mmap(PageSize, ProtRead|ProtExec, "/lib/so"+string(rune('a'+i)), p.PID, "c1")
	}
	cg := k.NewCgroup("/c1")
	cg.AddProcess(p)
	ns := k.NewNamespaceSet(p.PID, "c1")
	mt := k.NewMountTable()
	mt.Mount(Mount{Source: "overlay", Target: "/", FSType: "overlay"}, p.PID, "c1")

	m := k.StartMeter()
	k.CollectCgroup(cg)
	k.CollectNamespaces(ns)
	k.CollectMounts(mt)
	k.CollectDevices(nil)
	k.StatMappedFiles(p)
	total := m.Stop()

	lo := 136 * simtime.Millisecond
	hi := 184 * simtime.Millisecond
	if total < lo || total > hi {
		t.Fatalf("infrequent-state collection = %v, want ≈160ms (±15%%)", total)
	}
}
