package simkernel

import (
	"bytes"
	"testing"
	"testing/quick"

	"nilicon/internal/simtime"
)

func newTestKernel() *Kernel { return NewKernel(simtime.NewClock()) }

func TestMmapAllocatesDisjointVMAs(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "c1")
	a := p.Mem.Mmap(3*PageSize, ProtRead|ProtWrite, "", p.PID, "c1")
	b := p.Mem.Mmap(PageSize, ProtRead|ProtWrite, "", p.PID, "c1")
	if a.Pages() != 3 || b.Pages() != 1 {
		t.Fatalf("page counts: %d, %d", a.Pages(), b.Pages())
	}
	if a.End > b.Start && b.End > a.Start {
		t.Fatalf("VMAs overlap: %v %v", a, b)
	}
}

func TestMmapRoundsUpToPage(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(1, ProtRead|ProtWrite, "", p.PID, "")
	if v.Pages() != 1 {
		t.Fatalf("1-byte mmap has %d pages, want 1", v.Pages())
	}
}

func TestMmapZeroSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-size mmap")
		}
	}()
	k := newTestKernel()
	p := k.NewProcess("test", "")
	p.Mem.Mmap(0, ProtRead, "", p.PID, "")
}

func TestWriteReadRoundTrip(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(4*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	data := []byte("hello, checkpoint world")
	// Write straddling a page boundary.
	addr := v.Start + PageSize - 5
	if err := p.Mem.Write(addr, data); err != nil {
		t.Fatal(err)
	}
	got, err := p.Mem.Read(addr, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestWriteUnmappedFails(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	if err := p.Mem.Write(0x500, []byte("x")); err == nil {
		t.Fatal("write to unmapped address succeeded")
	}
}

func TestWritePastVMAEndFails(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(PageSize, ProtRead|ProtWrite, "", p.PID, "")
	if err := p.Mem.Write(v.End-2, []byte("abcd")); err == nil {
		t.Fatal("write crossing VMA end succeeded")
	}
}

func TestWriteReadOnlyVMAFails(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(PageSize, ProtRead, "", p.PID, "")
	if err := p.Mem.Write(v.Start, []byte("x")); err == nil {
		t.Fatal("write to read-only VMA succeeded")
	}
}

func TestMunmapDropsPages(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(2*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	if err := p.Mem.Write(v.Start, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if p.Mem.ResidentPages() != 1 {
		t.Fatalf("resident = %d, want 1", p.Mem.ResidentPages())
	}
	p.Mem.Munmap(v)
	if p.Mem.ResidentPages() != 0 {
		t.Fatalf("resident after munmap = %d, want 0", p.Mem.ResidentPages())
	}
	if len(p.Mem.VMAs()) != 0 {
		t.Fatal("VMA still listed after munmap")
	}
}

func TestSoftDirtyLifecycle(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	p.Mem.SetSoftDirtyTracking(true)
	v := p.Mem.Mmap(8*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	// Touch 3 pages.
	for i := 0; i < 3; i++ {
		if err := p.Mem.Write(v.Start+uint64(i)*PageSize, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	dirty := p.Mem.DirtyPageNumbers()
	if len(dirty) != 3 {
		t.Fatalf("dirty pages = %d, want 3", len(dirty))
	}
	p.Mem.ClearSoftDirtyBits()
	if len(p.Mem.DirtyPageNumbers()) != 0 {
		t.Fatal("dirty set non-empty after clear")
	}
	// Rewrite one page: only it becomes dirty again.
	if err := p.Mem.Write(v.Start+PageSize, []byte{2}); err != nil {
		t.Fatal(err)
	}
	dirty = p.Mem.DirtyPageNumbers()
	if len(dirty) != 1 || dirty[0] != v.Start/PageSize+1 {
		t.Fatalf("dirty after rewrite = %v", dirty)
	}
}

func TestDirtyPageNumbersSorted(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(64*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	for _, i := range []int{40, 3, 17, 59, 0} {
		if err := p.Mem.Write(v.Start+uint64(i)*PageSize, []byte{9}); err != nil {
			t.Fatal(err)
		}
	}
	dirty := p.Mem.DirtyPageNumbers()
	for i := 1; i < len(dirty); i++ {
		if dirty[i] <= dirty[i-1] {
			t.Fatalf("dirty list not sorted: %v", dirty)
		}
	}
}

func TestTrackingOverheadSoftDirty(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	p.Mem.SetSoftDirtyTracking(true)
	v := p.Mem.Mmap(4*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	// First touches: minor faults only.
	for i := 0; i < 4; i++ {
		_ = p.Mem.Write(v.Start+uint64(i)*PageSize, []byte{1})
	}
	base := p.Mem.ConsumeTrackingOverhead()
	if base != 4*k.Costs.MinorFault {
		t.Fatalf("first-touch overhead = %v, want 4 minor faults (%v)", base, 4*k.Costs.MinorFault)
	}
	// Clear soft-dirty, rewrite 2 pages → 2 soft-dirty faults.
	p.Mem.ClearSoftDirtyBits()
	_ = p.Mem.Write(v.Start, []byte{2})
	_ = p.Mem.Write(v.Start+PageSize, []byte{2})
	_ = p.Mem.Write(v.Start, []byte{3}) // second write to same page: no extra fault
	d := p.Mem.ConsumeTrackingOverhead()
	if d != 2*k.Costs.SoftDirtyFault {
		t.Fatalf("soft-dirty overhead = %v, want %v", d, 2*k.Costs.SoftDirtyFault)
	}
}

func TestTrackingOverheadWriteProtect(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("vm", "")
	v := p.Mem.Mmap(4*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	for i := 0; i < 4; i++ {
		_ = p.Mem.Write(v.Start+uint64(i)*PageSize, []byte{1})
	}
	p.Mem.ConsumeTrackingOverhead()
	p.Mem.WriteProtectAll()
	_ = p.Mem.Write(v.Start, []byte{2})
	_ = p.Mem.Write(v.Start, []byte{3}) // already unprotected
	_ = p.Mem.Write(v.Start+2*PageSize, []byte{2})
	d := p.Mem.ConsumeTrackingOverhead()
	if d != 2*k.Costs.VMExit {
		t.Fatalf("VM-exit overhead = %v, want %v", d, 2*k.Costs.VMExit)
	}
}

func TestTouchDirtiesExactCount(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(100*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	if err := p.Mem.Touch(v, 10, 25, 0xAB); err != nil {
		t.Fatal(err)
	}
	if got := len(p.Mem.DirtyPageNumbers()); got != 25 {
		t.Fatalf("dirty = %d, want 25", got)
	}
	if p.Mem.PageData(v.Start/PageSize + 10)[0] != 0xAB {
		t.Fatal("stamp byte not written")
	}
	if err := p.Mem.Touch(v, 90, 20, 1); err == nil {
		t.Fatal("out-of-range Touch succeeded")
	}
}

func TestInstallPageRestore(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(PageSize, ProtRead|ProtWrite, "", p.PID, "")
	content := bytes.Repeat([]byte{0x5A}, PageSize)
	p.Mem.InstallPage(v.Start/PageSize, content)
	got, err := p.Mem.Read(v.Start, PageSize)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, content) {
		t.Fatal("installed page content mismatch")
	}
}

func TestInstallPageCopiesData(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.Mmap(PageSize, ProtRead|ProtWrite, "", p.PID, "")
	buf := []byte{1, 2, 3}
	p.Mem.InstallPage(v.Start/PageSize, buf)
	buf[0] = 99
	if p.Mem.PageData(v.Start / PageSize)[0] != 1 {
		t.Fatal("InstallPage aliased caller's buffer")
	}
}

func TestInstallVMA(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	v := p.Mem.InstallVMA(VMA{Start: 0x400000, End: 0x402000, Prot: ProtRead | ProtWrite})
	if p.Mem.FindVMA(0x401000) != v {
		t.Fatal("installed VMA not found")
	}
	// Subsequent Mmap must not collide.
	w := p.Mem.Mmap(PageSize, ProtRead, "", p.PID, "")
	if w.Start < v.End {
		t.Fatalf("mmap after InstallVMA collided: %v vs %v", w, v)
	}
}

func TestMappedFilesDeduplicated(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("test", "")
	p.Mem.Mmap(PageSize, ProtRead|ProtExec, "/lib/libc.so", p.PID, "")
	p.Mem.Mmap(PageSize, ProtRead, "/lib/libc.so", p.PID, "")
	p.Mem.Mmap(PageSize, ProtRead, "/lib/libm.so", p.PID, "")
	files := p.Mem.MappedFiles()
	if len(files) != 2 {
		t.Fatalf("mapped files = %v, want 2 distinct", files)
	}
}

func TestProtString(t *testing.T) {
	if s := (ProtRead | ProtWrite).String(); s != "rw-" {
		t.Fatalf("Prot string = %q", s)
	}
	if s := (ProtRead | ProtExec).String(); s != "r-x" {
		t.Fatalf("Prot string = %q", s)
	}
}

// Property: any sequence of writes followed by reads returns exactly the
// written bytes (last-writer-wins per offset), using a flat model slice.
func TestPropertyMemoryMatchesFlatModel(t *testing.T) {
	const size = 16 * PageSize
	f := func(ops []struct {
		Off  uint16
		Data []byte
	}) bool {
		k := newTestKernel()
		p := k.NewProcess("prop", "")
		v := p.Mem.Mmap(size, ProtRead|ProtWrite, "", p.PID, "")
		model := make([]byte, size)
		for _, op := range ops {
			off := uint64(op.Off) % (size - 256)
			data := op.Data
			if len(data) > 256 {
				data = data[:256]
			}
			if err := p.Mem.Write(v.Start+off, data); err != nil {
				return false
			}
			copy(model[off:], data)
		}
		got, err := p.Mem.Read(v.Start, size)
		if err != nil {
			return false
		}
		return bytes.Equal(got, model)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: after ClearSoftDirtyBits, DirtyPageNumbers equals exactly the
// set of pages written afterwards.
func TestPropertyDirtySetMatchesWrites(t *testing.T) {
	f := func(pageIdxs []uint8) bool {
		k := newTestKernel()
		p := k.NewProcess("prop", "")
		p.Mem.SetSoftDirtyTracking(true)
		v := p.Mem.Mmap(256*PageSize, ProtRead|ProtWrite, "", p.PID, "")
		// Pre-fault everything, then clear.
		_ = p.Mem.Touch(v, 0, 256, 0)
		p.Mem.ClearSoftDirtyBits()
		want := make(map[uint64]bool)
		for _, i := range pageIdxs {
			addr := v.Start + uint64(i)*PageSize
			if err := p.Mem.Write(addr, []byte{0xFF}); err != nil {
				return false
			}
			want[addr/PageSize] = true
		}
		got := p.Mem.DirtyPageNumbers()
		if len(got) != len(want) {
			return false
		}
		for _, pn := range got {
			if !want[pn] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
