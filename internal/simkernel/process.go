package simkernel

import (
	"fmt"

	"nilicon/internal/ftrace"
	"nilicon/internal/simtime"
)

// ThreadState is a thread's scheduler state.
type ThreadState int

// Thread states.
const (
	ThreadRunning ThreadState = iota
	ThreadBlocked
	ThreadFrozen
	ThreadExited
)

func (s ThreadState) String() string {
	switch s {
	case ThreadRunning:
		return "running"
	case ThreadBlocked:
		return "blocked"
	case ThreadFrozen:
		return "frozen"
	case ThreadExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Registers is the architectural register file the parasite must collect.
type Registers struct {
	PC, SP uint64
	GP     [8]uint64
}

// SchedPolicy is the thread's scheduling class and priority.
type SchedPolicy struct {
	Policy   string // "SCHED_OTHER", "SCHED_FIFO", ...
	Priority int
}

// Thread is one kernel task.
type Thread struct {
	TID     int
	Proc    *Process
	Regs    Registers
	SigMask uint64
	Policy  SchedPolicy
	State   ThreadState
	// InSyscall marks a thread currently executing a system call; the
	// freezer must interrupt it, which takes longer (§II-B).
	InSyscall bool
	// prevState remembers the state to restore on thaw.
	prevState ThreadState
}

// Timer is a POSIX interval timer owned by a process; part of the state
// only the parasite can retrieve (§II-B).
type Timer struct {
	ID        int
	Interval  simtime.Duration
	Remaining simtime.Duration
}

// FDKind classifies file descriptors.
type FDKind int

// Descriptor kinds.
const (
	FDFile FDKind = iota
	FDSocket
	FDPipe
	FDDevice
	FDEventFD
)

func (k FDKind) String() string {
	switch k {
	case FDFile:
		return "file"
	case FDSocket:
		return "socket"
	case FDPipe:
		return "pipe"
	case FDDevice:
		return "device"
	case FDEventFD:
		return "eventfd"
	default:
		return fmt.Sprintf("FDKind(%d)", int(k))
	}
}

// FD is one open file descriptor.
type FD struct {
	Num    int
	Kind   FDKind
	Path   string // file path or device node; empty for sockets/pipes
	Offset int64
	// SockID links FDSocket descriptors to the simnet socket table.
	SockID int
	Flags  int
}

// Process is a kernel process: threads sharing an address space and a
// descriptor table.
type Process struct {
	PID         int
	Name        string
	ContainerID string
	Parent      *Process

	Threads []*Thread
	Mem     *AddressSpace
	FDs     map[int]*FD
	Timers  []*Timer
	Cwd     string
	Exited  bool

	k       *Kernel
	nextTID int
	nextFD  int

	// randState is the deterministic entropy pool behind GetRandom,
	// seeded from the PID so every run draws the same sequence.
	randState uint64
	// randQueue holds injected values replayed ahead of the pool: the
	// record/replay driver pushes a failed-over container's recorded
	// draws here so re-executed handlers see the primary's exact results.
	randQueue []uint64
	// RandHook, when set, observes every GetRandom result (the recorder's
	// sim-syscall capture point).
	RandHook func(uint64)
}

// NewThread adds a thread to the process.
func (p *Process) NewThread() *Thread {
	t := &Thread{
		TID:    p.PID*1000 + p.nextTID,
		Proc:   p,
		Policy: SchedPolicy{Policy: "SCHED_OTHER"},
		State:  ThreadRunning,
	}
	p.nextTID++
	p.Threads = append(p.Threads, t)
	return t
}

// MainThread returns the first thread.
func (p *Process) MainThread() *Thread { return p.Threads[0] }

// OpenFD allocates a descriptor of the given kind.
func (p *Process) OpenFD(kind FDKind, path string) *FD {
	fd := &FD{Num: p.nextFD, Kind: kind, Path: path}
	p.nextFD++
	p.FDs[fd.Num] = fd
	if kind == FDDevice {
		p.k.Trace.Fire(ftraceEvent("chrdev_open", p.PID, p.ContainerID, path))
	}
	return fd
}

// CloseFD releases a descriptor; closing an unknown number is a no-op.
func (p *Process) CloseFD(num int) { delete(p.FDs, num) }

// FDList returns the descriptors in ascending numeric order.
func (p *Process) FDList() []*FD {
	out := make([]*FD, 0, len(p.FDs))
	for n := 0; n < p.nextFD; n++ {
		if fd, ok := p.FDs[n]; ok {
			out = append(out, fd)
		}
	}
	return out
}

// AddTimer registers an interval timer.
func (p *Process) AddTimer(interval, remaining simtime.Duration) *Timer {
	t := &Timer{ID: len(p.Timers) + 1, Interval: interval, Remaining: remaining}
	p.Timers = append(p.Timers, t)
	return t
}

// GetRandom models the getrandom(2) sim-syscall: a nondeterministic
// kernel result the checkpoint cannot capture (the pool advances between
// epochs). The simulation keeps it deterministic per process — a
// splitmix64 stream seeded from the PID — but record/replay must still
// log every draw: a restored process re-executing from a checkpoint
// would otherwise resume the stream at the checkpoint's position and
// diverge from the results the primary already exposed. Injected values
// (PushRand) are consumed before the pool, in FIFO order.
func (p *Process) GetRandom() uint64 {
	p.k.ChargeSyscall(0)
	var v uint64
	if len(p.randQueue) > 0 {
		v = p.randQueue[0]
		p.randQueue = p.randQueue[1:]
	} else {
		if p.randState == 0 {
			p.randState = uint64(p.PID)*0x9e3779b97f4a7c15 + 0x1
		}
		p.randState += 0x9e3779b97f4a7c15
		z := p.randState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		v = z ^ (z >> 31)
	}
	if p.RandHook != nil {
		p.RandHook(v)
	}
	return v
}

// PushRand queues values for GetRandom to return ahead of the entropy
// pool (replay injection).
func (p *Process) PushRand(values ...uint64) {
	p.randQueue = append(p.randQueue, values...)
}

// ThreadSnapshot is the per-thread state the parasite collects.
type ThreadSnapshot struct {
	TID     int
	Regs    Registers
	SigMask uint64
	Policy  SchedPolicy
}

// GetThreadState retrieves one thread's registers, signal mask and
// scheduling policy through the parasite, charging the per-thread cost
// the paper measures at ≈130 µs (§VII-C).
func (k *Kernel) GetThreadState(t *Thread) ThreadSnapshot {
	k.Charge(k.Costs.ThreadState)
	return ThreadSnapshot{TID: t.TID, Regs: t.Regs, SigMask: t.SigMask, Policy: t.Policy}
}

// FDSnapshot is one descriptor's checkpointed state.
type FDSnapshot struct {
	Num    int
	Kind   FDKind
	Path   string
	Offset int64
	SockID int
	Flags  int
}

// CollectFDs gathers the descriptor table, charging per entry.
func (k *Kernel) CollectFDs(p *Process) []FDSnapshot {
	out := make([]FDSnapshot, 0, len(p.FDs))
	for _, fd := range p.FDList() {
		k.Charge(k.Costs.FDEntry)
		out = append(out, FDSnapshot{
			Num: fd.Num, Kind: fd.Kind, Path: fd.Path,
			Offset: fd.Offset, SockID: fd.SockID, Flags: fd.Flags,
		})
	}
	return out
}

// TimerSnapshot is one timer's checkpointed state.
type TimerSnapshot struct {
	ID        int
	Interval  simtime.Duration
	Remaining simtime.Duration
}

// CollectTimers gathers the process's POSIX timers via the parasite.
func (k *Kernel) CollectTimers(p *Process) []TimerSnapshot {
	out := make([]TimerSnapshot, 0, len(p.Timers))
	for _, t := range p.Timers {
		k.Charge(k.Costs.TimerEntry)
		out = append(out, TimerSnapshot{ID: t.ID, Interval: t.Interval, Remaining: t.Remaining})
	}
	return out
}

// StatMappedFiles models the stat() call stock CRIU issues per
// memory-mapped file (dynamic libraries etc.; §V cause (1)). It returns
// the file list and charges one StatFile per distinct file.
func (k *Kernel) StatMappedFiles(p *Process) []string {
	files := p.Mem.MappedFiles()
	for range files {
		k.ChargeSyscall(k.Costs.StatFile)
	}
	return files
}

func ftraceEvent(fn string, pid int, containerID, detail string) ftrace.Event {
	return ftrace.Event{Fn: fn, PID: pid, ContainerID: containerID, Detail: detail}
}
