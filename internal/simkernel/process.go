package simkernel

import (
	"fmt"

	"nilicon/internal/ftrace"
	"nilicon/internal/simtime"
)

// ThreadState is a thread's scheduler state.
type ThreadState int

// Thread states.
const (
	ThreadRunning ThreadState = iota
	ThreadBlocked
	ThreadFrozen
	ThreadExited
)

func (s ThreadState) String() string {
	switch s {
	case ThreadRunning:
		return "running"
	case ThreadBlocked:
		return "blocked"
	case ThreadFrozen:
		return "frozen"
	case ThreadExited:
		return "exited"
	default:
		return fmt.Sprintf("ThreadState(%d)", int(s))
	}
}

// Registers is the architectural register file the parasite must collect.
type Registers struct {
	PC, SP uint64
	GP     [8]uint64
}

// SchedPolicy is the thread's scheduling class and priority.
type SchedPolicy struct {
	Policy   string // "SCHED_OTHER", "SCHED_FIFO", ...
	Priority int
}

// Thread is one kernel task.
type Thread struct {
	TID     int
	Proc    *Process
	Regs    Registers
	SigMask uint64
	Policy  SchedPolicy
	State   ThreadState
	// InSyscall marks a thread currently executing a system call; the
	// freezer must interrupt it, which takes longer (§II-B).
	InSyscall bool
	// prevState remembers the state to restore on thaw.
	prevState ThreadState
}

// Timer is a POSIX interval timer owned by a process; part of the state
// only the parasite can retrieve (§II-B).
type Timer struct {
	ID        int
	Interval  simtime.Duration
	Remaining simtime.Duration
}

// FDKind classifies file descriptors.
type FDKind int

// Descriptor kinds.
const (
	FDFile FDKind = iota
	FDSocket
	FDPipe
	FDDevice
	FDEventFD
)

func (k FDKind) String() string {
	switch k {
	case FDFile:
		return "file"
	case FDSocket:
		return "socket"
	case FDPipe:
		return "pipe"
	case FDDevice:
		return "device"
	case FDEventFD:
		return "eventfd"
	default:
		return fmt.Sprintf("FDKind(%d)", int(k))
	}
}

// FD is one open file descriptor.
type FD struct {
	Num    int
	Kind   FDKind
	Path   string // file path or device node; empty for sockets/pipes
	Offset int64
	// SockID links FDSocket descriptors to the simnet socket table.
	SockID int
	Flags  int
}

// Process is a kernel process: threads sharing an address space and a
// descriptor table.
type Process struct {
	PID         int
	Name        string
	ContainerID string
	Parent      *Process

	Threads []*Thread
	Mem     *AddressSpace
	FDs     map[int]*FD
	Timers  []*Timer
	Cwd     string
	Exited  bool

	k       *Kernel
	nextTID int
	nextFD  int
}

// NewThread adds a thread to the process.
func (p *Process) NewThread() *Thread {
	t := &Thread{
		TID:    p.PID*1000 + p.nextTID,
		Proc:   p,
		Policy: SchedPolicy{Policy: "SCHED_OTHER"},
		State:  ThreadRunning,
	}
	p.nextTID++
	p.Threads = append(p.Threads, t)
	return t
}

// MainThread returns the first thread.
func (p *Process) MainThread() *Thread { return p.Threads[0] }

// OpenFD allocates a descriptor of the given kind.
func (p *Process) OpenFD(kind FDKind, path string) *FD {
	fd := &FD{Num: p.nextFD, Kind: kind, Path: path}
	p.nextFD++
	p.FDs[fd.Num] = fd
	if kind == FDDevice {
		p.k.Trace.Fire(ftraceEvent("chrdev_open", p.PID, p.ContainerID, path))
	}
	return fd
}

// CloseFD releases a descriptor; closing an unknown number is a no-op.
func (p *Process) CloseFD(num int) { delete(p.FDs, num) }

// FDList returns the descriptors in ascending numeric order.
func (p *Process) FDList() []*FD {
	out := make([]*FD, 0, len(p.FDs))
	for n := 0; n < p.nextFD; n++ {
		if fd, ok := p.FDs[n]; ok {
			out = append(out, fd)
		}
	}
	return out
}

// AddTimer registers an interval timer.
func (p *Process) AddTimer(interval, remaining simtime.Duration) *Timer {
	t := &Timer{ID: len(p.Timers) + 1, Interval: interval, Remaining: remaining}
	p.Timers = append(p.Timers, t)
	return t
}

// ThreadSnapshot is the per-thread state the parasite collects.
type ThreadSnapshot struct {
	TID     int
	Regs    Registers
	SigMask uint64
	Policy  SchedPolicy
}

// GetThreadState retrieves one thread's registers, signal mask and
// scheduling policy through the parasite, charging the per-thread cost
// the paper measures at ≈130 µs (§VII-C).
func (k *Kernel) GetThreadState(t *Thread) ThreadSnapshot {
	k.Charge(k.Costs.ThreadState)
	return ThreadSnapshot{TID: t.TID, Regs: t.Regs, SigMask: t.SigMask, Policy: t.Policy}
}

// FDSnapshot is one descriptor's checkpointed state.
type FDSnapshot struct {
	Num    int
	Kind   FDKind
	Path   string
	Offset int64
	SockID int
	Flags  int
}

// CollectFDs gathers the descriptor table, charging per entry.
func (k *Kernel) CollectFDs(p *Process) []FDSnapshot {
	out := make([]FDSnapshot, 0, len(p.FDs))
	for _, fd := range p.FDList() {
		k.Charge(k.Costs.FDEntry)
		out = append(out, FDSnapshot{
			Num: fd.Num, Kind: fd.Kind, Path: fd.Path,
			Offset: fd.Offset, SockID: fd.SockID, Flags: fd.Flags,
		})
	}
	return out
}

// TimerSnapshot is one timer's checkpointed state.
type TimerSnapshot struct {
	ID        int
	Interval  simtime.Duration
	Remaining simtime.Duration
}

// CollectTimers gathers the process's POSIX timers via the parasite.
func (k *Kernel) CollectTimers(p *Process) []TimerSnapshot {
	out := make([]TimerSnapshot, 0, len(p.Timers))
	for _, t := range p.Timers {
		k.Charge(k.Costs.TimerEntry)
		out = append(out, TimerSnapshot{ID: t.ID, Interval: t.Interval, Remaining: t.Remaining})
	}
	return out
}

// StatMappedFiles models the stat() call stock CRIU issues per
// memory-mapped file (dynamic libraries etc.; §V cause (1)). It returns
// the file list and charges one StatFile per distinct file.
func (k *Kernel) StatMappedFiles(p *Process) []string {
	files := p.Mem.MappedFiles()
	for range files {
		k.ChargeSyscall(k.Costs.StatFile)
	}
	return files
}

func ftraceEvent(fn string, pid int, containerID, detail string) ftrace.Event {
	return ftrace.Event{Fn: fn, PID: pid, ContainerID: containerID, Detail: detail}
}
