package simkernel

// The paper's cause (3) for slow checkpointing (§V): "some of the kernel
// interfaces provide information in a format that is expensive to
// generate and parse" — /proc/pid/smaps renders every VMA as multi-line
// text with per-page statistics. This file renders and parses that
// format for real, so the smaps path in the simulation does the actual
// textual work a real CRIU pays for (its virtual-time cost is charged
// separately by ReadSmaps).

import (
	"fmt"
	"strconv"
	"strings"
)

// SmapsText renders the process's memory map in /proc/pid/smaps format.
func (k *Kernel) SmapsText(p *Process) string {
	var b strings.Builder
	for _, info := range k.vmaInfos(p, true) {
		name := info.Path
		perm := info.Prot.String() + "p"
		fmt.Fprintf(&b, "%08x-%08x %s %08x 00:00 %d %s\n",
			info.Start, info.End, perm, info.FileOff, 0, name)
		sizeKB := (info.End - info.Start) / 1024
		fmt.Fprintf(&b, "Size:           %8d kB\n", sizeKB)
		fmt.Fprintf(&b, "Rss:            %8d kB\n", uint64(info.ResidentPages)*PageSize/1024)
		fmt.Fprintf(&b, "Shared_Clean:   %8d kB\n", 0)
		fmt.Fprintf(&b, "Shared_Dirty:   %8d kB\n", 0)
		fmt.Fprintf(&b, "Private_Clean:  %8d kB\n",
			uint64(info.ResidentPages-info.DirtyPages)*PageSize/1024)
		fmt.Fprintf(&b, "Private_Dirty:  %8d kB\n", uint64(info.DirtyPages)*PageSize/1024)
		fmt.Fprintf(&b, "VmFlags: rd wr mr mw me ac sd\n")
	}
	return b.String()
}

// ParseSmaps parses SmapsText output back into VMA records — the work a
// userspace checkpointer performs after reading the file.
func ParseSmaps(text string) ([]VMAInfo, error) {
	var out []VMAInfo
	var cur *VMAInfo
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		first, _, _ := strings.Cut(line, " ")
		// A header line's first token is "start-end" (hex range); stat
		// lines start with a "Name:" token.
		if strings.Count(first, "-") == 1 && !strings.HasSuffix(first, ":") {
			// Header line: "start-end perm offset dev inode path".
			fields := strings.Fields(line)
			if len(fields) < 4 {
				return nil, fmt.Errorf("simkernel: bad smaps header %q", line)
			}
			rng := strings.SplitN(fields[0], "-", 2)
			start, err := strconv.ParseUint(rng[0], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("simkernel: bad smaps range %q: %v", fields[0], err)
			}
			end, err := strconv.ParseUint(rng[1], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("simkernel: bad smaps range %q: %v", fields[0], err)
			}
			off, err := strconv.ParseUint(fields[2], 16, 64)
			if err != nil {
				return nil, fmt.Errorf("simkernel: bad smaps offset %q: %v", fields[2], err)
			}
			var prot Prot
			perm := fields[1]
			if strings.ContainsRune(perm[:3], 'r') {
				prot |= ProtRead
			}
			if strings.ContainsRune(perm[:3], 'w') {
				prot |= ProtWrite
			}
			if strings.ContainsRune(perm[:3], 'x') {
				prot |= ProtExec
			}
			path := ""
			if len(fields) >= 6 {
				path = fields[5]
			}
			out = append(out, VMAInfo{Start: start, End: end, Prot: prot, FileOff: off, Path: path})
			cur = &out[len(out)-1]
			continue
		}
		if cur == nil {
			continue
		}
		switch {
		case strings.HasPrefix(line, "Rss:"):
			kb, err := parseKB(line)
			if err != nil {
				return nil, err
			}
			cur.ResidentPages = int(kb * 1024 / PageSize)
		case strings.HasPrefix(line, "Private_Dirty:"):
			kb, err := parseKB(line)
			if err != nil {
				return nil, err
			}
			cur.DirtyPages = int(kb * 1024 / PageSize)
		}
	}
	return out, nil
}

func parseKB(line string) (uint64, error) {
	fields := strings.Fields(line)
	if len(fields) < 3 || fields[2] != "kB" {
		return 0, fmt.Errorf("simkernel: bad smaps stat line %q", line)
	}
	return strconv.ParseUint(fields[1], 10, 64)
}
