package simkernel

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSmapsTextRendersAllVMAs(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("app", "")
	v := p.Mem.Mmap(8*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	_ = p.Mem.Touch(v, 0, 3, 1)
	p.Mem.Mmap(4*PageSize, ProtRead|ProtExec, "/lib/libc.so", p.PID, "")
	text := k.SmapsText(p)
	if !strings.Contains(text, "/lib/libc.so") {
		t.Fatal("mapped file missing from smaps text")
	}
	if !strings.Contains(text, "rw-p") || !strings.Contains(text, "r-xp") {
		t.Fatalf("permissions missing:\n%s", text)
	}
	if !strings.Contains(text, "Rss:") || !strings.Contains(text, "Private_Dirty:") {
		t.Fatal("page statistics missing")
	}
}

func TestSmapsRoundTrip(t *testing.T) {
	k := newTestKernel()
	p := k.NewProcess("app", "")
	v := p.Mem.Mmap(16*PageSize, ProtRead|ProtWrite, "", p.PID, "")
	_ = p.Mem.Touch(v, 0, 5, 1)
	p.Mem.Mmap(4*PageSize, ProtRead|ProtExec, "/lib/ld.so", p.PID, "")

	parsed, err := ParseSmaps(k.SmapsText(p))
	if err != nil {
		t.Fatal(err)
	}
	want := k.TaskDiagVMAs(p)
	if len(parsed) != len(want) {
		t.Fatalf("parsed %d VMAs, want %d", len(parsed), len(want))
	}
	for i := range want {
		if parsed[i].Start != want[i].Start || parsed[i].End != want[i].End ||
			parsed[i].Prot != want[i].Prot || parsed[i].Path != want[i].Path {
			t.Fatalf("VMA %d mismatch: %+v vs %+v", i, parsed[i], want[i])
		}
	}
	if parsed[0].ResidentPages != 5 || parsed[0].DirtyPages != 5 {
		t.Fatalf("page stats: %+v", parsed[0])
	}
}

func TestParseSmapsRejectsGarbage(t *testing.T) {
	if _, err := ParseSmaps("zzzz-yyyy rw-p 0 0 0\n"); err == nil {
		t.Fatal("garbage header accepted")
	}
	if _, err := ParseSmaps("00000000-00001000 rw-p 00000000 00:00 0 \nRss: nonsense\n"); err == nil {
		t.Fatal("garbage stat line accepted")
	}
}

// Property: for any random set of mappings, render→parse preserves the
// VMA list exactly.
func TestPropertySmapsRoundTrip(t *testing.T) {
	f := func(sizes []uint8, protBits []uint8) bool {
		k := newTestKernel()
		p := k.NewProcess("prop", "")
		n := len(sizes)
		if n > 20 {
			n = 20
		}
		for i := 0; i < n; i++ {
			prot := Prot(1) // always readable
			if i < len(protBits) {
				prot |= Prot(protBits[i]) & (ProtWrite | ProtExec)
			}
			path := ""
			if i%3 == 0 {
				path = "/lib/x.so"
			}
			p.Mem.Mmap(uint64(sizes[i]%16+1)*PageSize, prot, path, p.PID, "")
		}
		parsed, err := ParseSmaps(k.SmapsText(p))
		if err != nil {
			return false
		}
		want := k.TaskDiagVMAs(p)
		if len(parsed) != len(want) {
			return false
		}
		for i := range want {
			if parsed[i].Start != want[i].Start || parsed[i].End != want[i].End ||
				parsed[i].Prot != want[i].Prot || parsed[i].Path != want[i].Path {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
