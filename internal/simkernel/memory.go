package simkernel

import (
	"fmt"
	"sort"

	"nilicon/internal/simtime"
)

// PageSize is the simulated page size in bytes.
const PageSize = 4096

// Prot is a VMA protection bitmask.
type Prot uint8

// Protection bits.
const (
	ProtRead Prot = 1 << iota
	ProtWrite
	ProtExec
)

func (p Prot) String() string {
	s := []byte("---")
	if p&ProtRead != 0 {
		s[0] = 'r'
	}
	if p&ProtWrite != 0 {
		s[1] = 'w'
	}
	if p&ProtExec != 0 {
		s[2] = 'x'
	}
	return string(s)
}

// VMA is one virtual memory area.
type VMA struct {
	Start uint64 // inclusive, page-aligned
	End   uint64 // exclusive, page-aligned
	Prot  Prot
	// Path is the backing file path; empty for anonymous mappings.
	// Memory-mapped files are what make stat()-per-file expensive in
	// stock CRIU (§V cause (1)).
	Path    string
	FileOff uint64
}

// Pages returns the number of pages the VMA spans.
func (v *VMA) Pages() int { return int((v.End - v.Start) / PageSize) }

// Anonymous reports whether the VMA has no backing file.
func (v *VMA) Anonymous() bool { return v.Path == "" }

func (v *VMA) String() string {
	return fmt.Sprintf("%x-%x %s %s", v.Start, v.End, v.Prot, v.Path)
}

// Page is one resident page frame. Data always has length PageSize.
type Page struct {
	Data []byte
	// SoftDirty is the kernel's soft-dirty PTE bit (set on write, cleared
	// via /proc/pid/clear_refs).
	SoftDirty bool
	// WriteProtected supports hypervisor-style dirty tracking (MC): a
	// write to a protected page costs a VM exit and clears the bit.
	WriteProtected bool
}

// AddressSpace is a process's virtual memory: a sorted set of VMAs plus
// the resident pages, with both soft-dirty (NiLiCon) and write-protect
// (MC) dirty tracking.
type AddressSpace struct {
	k    *Kernel
	vmas []*VMA // sorted by Start, non-overlapping
	// pages maps page number (address / PageSize) to the resident frame.
	pages map[uint64]*Page

	nextMap uint64 // bump allocator for Mmap

	softTracking bool
	wpTracking   bool

	// trackOverhead accumulates runtime dirty-tracking costs (soft-dirty
	// faults or VM exits) since the last harvest. The container scheduler
	// folds it into thread execution time; this is the paper's "runtime
	// overhead" component in Figure 3.
	trackOverhead simtime.Duration
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace(k *Kernel) *AddressSpace {
	return &AddressSpace{
		k:       k,
		pages:   make(map[uint64]*Page),
		nextMap: 0x10000, // leave the zero pages unmapped
	}
}

// Mmap allocates a VMA of the given size (rounded up to pages) at a fresh
// address. path names the backing file ("" for anonymous). Mapping a file
// fires the ftrace hook for mmap, which the state-change tracker uses to
// invalidate the mapped-files cache (§V-B).
func (as *AddressSpace) Mmap(size uint64, prot Prot, path string, pid int, containerID string) *VMA {
	if size == 0 {
		panic("simkernel: Mmap of zero size")
	}
	pages := (size + PageSize - 1) / PageSize
	v := &VMA{Start: as.nextMap, End: as.nextMap + pages*PageSize, Prot: prot, Path: path}
	as.nextMap = v.End + PageSize // guard page gap
	as.vmas = append(as.vmas, v)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	if path != "" {
		as.k.Trace.Fire(ftraceEvent("mmap_region", pid, containerID, path))
	}
	return v
}

// Munmap removes a VMA and drops its resident pages.
func (as *AddressSpace) Munmap(v *VMA) {
	for i, x := range as.vmas {
		if x == v {
			as.vmas = append(as.vmas[:i], as.vmas[i+1:]...)
			for pn := v.Start / PageSize; pn < v.End/PageSize; pn++ {
				delete(as.pages, pn)
			}
			return
		}
	}
}

// VMAs returns the VMA list (shared slice; callers must not mutate).
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// FindVMA returns the VMA containing addr, or nil.
func (as *AddressSpace) FindVMA(addr uint64) *VMA {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End > addr })
	if i < len(as.vmas) && as.vmas[i].Start <= addr {
		return as.vmas[i]
	}
	return nil
}

// MappedFiles returns the distinct backing-file paths, in first-seen order.
func (as *AddressSpace) MappedFiles() []string {
	seen := make(map[string]bool)
	var out []string
	for _, v := range as.vmas {
		if v.Path != "" && !seen[v.Path] {
			seen[v.Path] = true
			out = append(out, v.Path)
		}
	}
	return out
}

// checkRange verifies [addr, addr+n) is covered by mapped VMAs.
func (as *AddressSpace) checkRange(addr uint64, n int) error {
	end := addr + uint64(n)
	for a := addr; a < end; {
		v := as.FindVMA(a)
		if v == nil {
			return fmt.Errorf("simkernel: segfault at %#x (unmapped)", a)
		}
		if v.End >= end {
			return nil
		}
		a = v.End
	}
	return nil
}

// page returns the resident frame for pn, faulting it in if needed.
func (as *AddressSpace) page(pn uint64, forWrite bool) *Page {
	pg := as.pages[pn]
	if pg == nil {
		pg = &Page{Data: make([]byte, PageSize)}
		as.pages[pn] = pg
		as.trackOverhead += as.k.Costs.MinorFault
		// A freshly faulted page starts dirty under both trackers.
		pg.SoftDirty = true
		return pg
	}
	if forWrite {
		if as.softTracking && !pg.SoftDirty {
			pg.SoftDirty = true
			as.trackOverhead += as.k.Costs.SoftDirtyFault
		} else if !as.softTracking {
			pg.SoftDirty = true
		}
		if as.wpTracking && pg.WriteProtected {
			pg.WriteProtected = false
			as.trackOverhead += as.k.Costs.VMExit
		}
	}
	return pg
}

// Write copies data into the address space at addr, performing dirty
// tracking. It returns an error on access to unmapped memory or to a
// non-writable VMA.
func (as *AddressSpace) Write(addr uint64, data []byte) error {
	if len(data) == 0 {
		return nil
	}
	if err := as.checkRange(addr, len(data)); err != nil {
		return err
	}
	if v := as.FindVMA(addr); v.Prot&ProtWrite == 0 {
		return fmt.Errorf("simkernel: write to read-only mapping at %#x", addr)
	}
	for off := 0; off < len(data); {
		pn := (addr + uint64(off)) / PageSize
		po := (addr + uint64(off)) % PageSize
		n := PageSize - int(po)
		if n > len(data)-off {
			n = len(data) - off
		}
		pg := as.page(pn, true)
		copy(pg.Data[po:], data[off:off+n])
		off += n
	}
	return nil
}

// Read copies n bytes starting at addr.
func (as *AddressSpace) Read(addr uint64, n int) ([]byte, error) {
	if err := as.checkRange(addr, n); err != nil {
		return nil, err
	}
	out := make([]byte, n)
	for off := 0; off < n; {
		pn := (addr + uint64(off)) / PageSize
		po := (addr + uint64(off)) % PageSize
		c := PageSize - int(po)
		if c > n-off {
			c = n - off
		}
		pg := as.page(pn, false)
		copy(out[off:off+c], pg.Data[po:])
		off += c
	}
	return out, nil
}

// Touch dirties count pages starting at the VMA's base without copying
// real payloads; workloads use it to model computation over large arrays
// cheaply while still exercising the fault/tracking machinery. Each page
// gets one byte written so content-based checks still see a change.
func (as *AddressSpace) Touch(v *VMA, firstPage, count int, stamp byte) error {
	if firstPage < 0 || firstPage+count > v.Pages() {
		return fmt.Errorf("simkernel: Touch out of VMA range (%d+%d of %d pages)", firstPage, count, v.Pages())
	}
	base := v.Start/PageSize + uint64(firstPage)
	for i := 0; i < count; i++ {
		pg := as.page(base+uint64(i), true)
		pg.Data[0] = stamp
	}
	return nil
}

// ResidentPages returns the number of resident page frames.
func (as *AddressSpace) ResidentPages() int { return len(as.pages) }

// SetSoftDirtyTracking enables or disables soft-dirty accounting of
// writes (the tracking bit itself lives on each page).
func (as *AddressSpace) SetSoftDirtyTracking(on bool) { as.softTracking = on }

// SoftDirtyTracking reports whether soft-dirty fault accounting is on.
func (as *AddressSpace) SoftDirtyTracking() bool { return as.softTracking }

// WriteProtectAll marks every resident page write-protected and enables
// VM-exit accounting; this models MC re-protecting the guest at the start
// of each epoch.
func (as *AddressSpace) WriteProtectAll() {
	as.wpTracking = true
	for _, pg := range as.pages {
		pg.WriteProtected = true
	}
}

// SetWriteProtectTracking toggles hypervisor-style tracking without
// touching page bits.
func (as *AddressSpace) SetWriteProtectTracking(on bool) { as.wpTracking = on }

// DirtyPageNumbers returns the sorted page numbers whose soft-dirty bit
// is set. This is the functional core of a pagemap scan; the procfs
// wrapper charges the scan cost.
func (as *AddressSpace) DirtyPageNumbers() []uint64 {
	var out []uint64
	for pn, pg := range as.pages {
		if pg.SoftDirty {
			out = append(out, pn)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// ClearSoftDirtyBits clears every page's soft-dirty bit (the functional
// part of writing /proc/pid/clear_refs).
func (as *AddressSpace) ClearSoftDirtyBits() {
	for _, pg := range as.pages {
		pg.SoftDirty = false
	}
}

// PageData returns the frame contents for page number pn (nil if the
// page is not resident). The returned slice aliases the live page.
func (as *AddressSpace) PageData(pn uint64) []byte {
	if pg := as.pages[pn]; pg != nil {
		return pg.Data
	}
	return nil
}

// InstallPage places content at page number pn during restore, without
// dirty-tracking charges. A copy of data is made; short data is
// zero-padded.
func (as *AddressSpace) InstallPage(pn uint64, data []byte) {
	pg := &Page{Data: make([]byte, PageSize)}
	copy(pg.Data, data)
	pg.SoftDirty = true
	as.pages[pn] = pg
}

// InstallVMA places a VMA during restore (no hook fire, no allocator
// bump beyond the VMA's own range).
func (as *AddressSpace) InstallVMA(v VMA) *VMA {
	nv := v
	as.vmas = append(as.vmas, &nv)
	sort.Slice(as.vmas, func(i, j int) bool { return as.vmas[i].Start < as.vmas[j].Start })
	if nv.End+PageSize > as.nextMap {
		as.nextMap = nv.End + PageSize
	}
	return &nv
}

// ConsumeTrackingOverhead returns and clears the accumulated runtime
// dirty-tracking cost.
func (as *AddressSpace) ConsumeTrackingOverhead() simtime.Duration {
	d := as.trackOverhead
	as.trackOverhead = 0
	return d
}
