package simnet

import (
	"bytes"
	"testing"
	"testing/quick"

	"nilicon/internal/simtime"
)

// pair wires two stacks through a switch and returns them.
type pair struct {
	clock  *simtime.Clock
	sw     *Switch
	a, b   *Stack
	pa, pb *Port
}

func newPair(t *testing.T) *pair {
	t.Helper()
	c := simtime.NewClock()
	sw := NewSwitch(c, 100*simtime.Microsecond, 28*simtime.Millisecond)
	pa := sw.Attach("a")
	pb := sw.Attach("b")
	a := NewStack(c, "10.0.0.1", pa.Send)
	b := NewStack(c, "10.0.0.2", pb.Send)
	pa.SetReceiver(a.Receive)
	pb.SetReceiver(b.Receive)
	sw.Learn(a.IP, pa)
	sw.Learn(b.IP, pb)
	return &pair{clock: c, sw: sw, a: a, b: b, pa: pa, pb: pb}
}

func TestHandshake(t *testing.T) {
	p := newPair(t)
	var server, client *Socket
	p.b.Listen(80, func(s *Socket) { server = s })
	p.a.Connect(p.b.IP, 80, func(s *Socket) { client = s })
	p.clock.Run()
	if client == nil || server == nil {
		t.Fatal("handshake did not complete")
	}
	if client.State != StateEstablished || server.State != StateEstablished {
		t.Fatalf("states: client=%v server=%v", client.State, server.State)
	}
}

func TestSynToClosedPortGetsRST(t *testing.T) {
	p := newPair(t)
	var rstSock *Socket
	s := p.a.Connect(p.b.IP, 81, nil)
	s.OnReset = func(x *Socket) { rstSock = x }
	p.clock.Run()
	if rstSock == nil {
		t.Fatal("no RST for SYN to closed port")
	}
	if p.b.RSTsSent() != 1 {
		t.Fatalf("server sent %d RSTs, want 1", p.b.RSTsSent())
	}
}

func TestDataTransfer(t *testing.T) {
	p := newPair(t)
	var got []byte
	p.b.Listen(80, func(s *Socket) {
		s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	})
	p.a.Connect(p.b.IP, 80, func(s *Socket) {
		s.Send([]byte("hello "))
		s.Send([]byte("world"))
	})
	p.clock.Run()
	if string(got) != "hello world" {
		t.Fatalf("got %q", got)
	}
}

func TestLargeTransferSegmentsAtMSS(t *testing.T) {
	p := newPair(t)
	payload := bytes.Repeat([]byte{0xAB}, 10_000)
	var got []byte
	p.b.Listen(80, func(s *Socket) {
		s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	})
	p.a.Connect(p.b.IP, 80, func(s *Socket) { s.Send(payload) })
	p.clock.Run()
	if !bytes.Equal(got, payload) {
		t.Fatalf("large transfer corrupted: got %d bytes, want %d", len(got), len(payload))
	}
}

func TestBidirectionalEcho(t *testing.T) {
	p := newPair(t)
	var reply []byte
	p.b.Listen(7, func(s *Socket) {
		s.OnData = func(s *Socket) { s.Send(s.ReadAll()) }
	})
	p.a.Connect(p.b.IP, 7, func(s *Socket) {
		s.OnData = func(s *Socket) { reply = append(reply, s.ReadAll()...) }
		s.Send([]byte("ping"))
	})
	p.clock.Run()
	if string(reply) != "ping" {
		t.Fatalf("echo reply = %q", reply)
	}
}

func TestAckPrunesWriteQueue(t *testing.T) {
	p := newPair(t)
	var cl *Socket
	p.b.Listen(80, func(s *Socket) {})
	p.a.Connect(p.b.IP, 80, func(s *Socket) {
		cl = s
		s.Send([]byte("data"))
	})
	p.clock.Run()
	if cl.UnackedBytes() != 0 {
		t.Fatalf("write queue = %d bytes after ACK, want 0", cl.UnackedBytes())
	}
}

func TestRetransmissionAfterLoss(t *testing.T) {
	p := newPair(t)
	var got []byte
	p.b.Listen(80, func(s *Socket) {
		s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	})
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()

	// Cut the wire, send (lost), reconnect, and wait for the RTO.
	p.pb.SetEnabled(false)
	cl.Send([]byte("lost-then-found"))
	p.clock.RunFor(50 * simtime.Millisecond)
	if len(got) != 0 {
		t.Fatal("data arrived through a dead port")
	}
	p.pb.SetEnabled(true)
	p.clock.Run()
	if string(got) != "lost-then-found" {
		t.Fatalf("after retransmission got %q", got)
	}
	if cl.Retransmits() == 0 {
		t.Fatal("no retransmissions recorded")
	}
}

func TestDuplicateSegmentsDiscarded(t *testing.T) {
	p := newPair(t)
	var got []byte
	var srv *Socket
	p.b.Listen(80, func(s *Socket) {
		srv = s
		s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	})
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()
	cl.Send([]byte("abc"))
	p.clock.Run()
	// Replay the same segment directly into the server stack.
	p.b.Receive(Packet{
		Kind: KindTCP, Src: p.a.IP, Dst: p.b.IP,
		SrcPort: cl.LocalPort, DstPort: 80,
		Flags: FlagACK, Seq: cl.sndUna - 3, Ack: srv.sndNxt, Payload: []byte("abc"),
	})
	p.clock.Run()
	if string(got) != "abc" {
		t.Fatalf("duplicate not discarded: got %q", got)
	}
}

func TestPartialOverlapConsumesOnlyNewBytes(t *testing.T) {
	p := newPair(t)
	var got []byte
	var srv *Socket
	p.b.Listen(80, func(s *Socket) {
		srv = s
		s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	})
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()
	cl.Send([]byte("abc"))
	p.clock.Run()
	// Segment overlapping the last 3 bytes plus 3 new ones.
	p.b.Receive(Packet{
		Kind: KindTCP, Src: p.a.IP, Dst: p.b.IP,
		SrcPort: cl.LocalPort, DstPort: 80,
		Flags: FlagACK, Seq: cl.sndUna - 3, Ack: srv.sndNxt, Payload: []byte("abcdef"),
	})
	p.clock.Run()
	if string(got) != "abcdef" {
		t.Fatalf("overlap handling: got %q, want abcdef", got)
	}
}

func TestOutOfOrderSegmentDropped(t *testing.T) {
	p := newPair(t)
	var got []byte
	var srv *Socket
	p.b.Listen(80, func(s *Socket) {
		srv = s
		s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	})
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()
	// Inject a segment with a gap.
	p.b.Receive(Packet{
		Kind: KindTCP, Src: p.a.IP, Dst: p.b.IP,
		SrcPort: cl.LocalPort, DstPort: 80,
		Flags: FlagACK, Seq: cl.sndNxt + 100, Ack: srv.sndNxt, Payload: []byte("gap"),
	})
	p.clock.Run()
	if len(got) != 0 {
		t.Fatalf("out-of-order segment delivered: %q", got)
	}
}

func TestClose(t *testing.T) {
	p := newPair(t)
	srvClosed, clClosed := false, false
	p.b.Listen(80, func(s *Socket) {
		s.OnClose = func(*Socket) { srvClosed = true }
	})
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) {
		cl = s
		s.OnClose = func(*Socket) { clClosed = true }
	})
	p.clock.Run()
	cl.Close()
	p.clock.Run()
	if !srvClosed {
		t.Fatal("server never saw FIN")
	}
	if !clClosed {
		t.Fatal("client close not acknowledged")
	}
}

func TestSynRetryWithBackoff(t *testing.T) {
	p := newPair(t)
	p.b.Listen(80, func(*Socket) {})
	connectedAt := simtime.Time(-1)

	// Block the server's ingress for 1.5 s: the first SYN (and its 1 s
	// retry... no — first SYN at t=0 dropped, retry at 1 s passes).
	p.pb.SetEnabled(false)
	p.clock.Schedule(500*simtime.Millisecond, func() { p.pb.SetEnabled(true) })
	p.a.Connect(p.b.IP, 80, func(s *Socket) { connectedAt = p.clock.Now() })
	p.clock.Run()

	if connectedAt < simtime.Time(simtime.Second) {
		t.Fatalf("connected at %v; dropped SYN should delay ≥1s (§V-C)", connectedAt)
	}
	if connectedAt > simtime.Time(1100*simtime.Millisecond) {
		t.Fatalf("connected at %v; retry should land shortly after 1s", connectedAt)
	}
}

func TestSynGivesUpAfterRetries(t *testing.T) {
	p := newPair(t)
	p.pb.SetEnabled(false) // server unreachable forever
	reset := false
	s := p.a.Connect(p.b.IP, 80, nil)
	s.OnReset = func(*Socket) { reset = true }
	p.clock.Run()
	if !reset {
		t.Fatal("connect never gave up")
	}
	if s.State != StateClosed {
		t.Fatalf("state = %v, want Closed", s.State)
	}
}

func TestRepairModeSuppressesPackets(t *testing.T) {
	p := newPair(t)
	p.b.Listen(80, func(*Socket) {})
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()
	cl.EnterRepair()
	cl.Send([]byte("should not appear")) // Send in repair mode: no emission
	p.clock.Run()
	if !cl.InRepair() {
		t.Fatal("not in repair")
	}
	if cl.UnackedBytes() != 0 {
		// Send() on a repaired socket is a protocol error by the app; we
		// specify it as silently ignored because State checks gate it.
		t.Log("note: send in repair queued bytes")
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	p := newPair(t)
	var srv *Socket
	p.b.Listen(80, func(s *Socket) { srv = s })
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()

	// Put unread data in the server's read queue and unacked data in its
	// write queue (client port disabled so ACKs never come back).
	cl.Send([]byte("request"))
	p.clock.Run()
	p.pa.SetEnabled(false)
	srv.Send([]byte("response"))
	p.clock.RunFor(10 * simtime.Millisecond)

	srv.EnterRepair()
	sn := p.b.SnapshotSocket(srv)
	if string(sn.ReadQueue) != "request" {
		t.Fatalf("read queue = %q", sn.ReadQueue)
	}
	if len(sn.WriteQueue) != 1 || string(sn.WriteQueue[0].Data) != "response" {
		t.Fatalf("write queue = %+v", sn.WriteQueue)
	}
	if sn.Size() <= 64 {
		t.Fatal("snapshot size should include queues")
	}

	// Restore into a fresh stack with the same IP.
	c2 := p.clock
	st2 := NewStack(c2, p.b.IP, nil)
	r := st2.RestoreSocket(sn)
	if r.State != StateEstablished || r.rcvNxt != sn.RcvNxt || r.sndNxt != sn.SndNxt {
		t.Fatalf("restored socket = %v", r)
	}
	if string(r.ReadAll()) != "request" {
		t.Fatal("read queue not restored")
	}
	if r.UnackedBytes() != 8 {
		t.Fatalf("write queue bytes = %d, want 8", r.UnackedBytes())
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	p := newPair(t)
	var srv *Socket
	p.b.Listen(80, func(s *Socket) { srv = s })
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()
	cl.Send([]byte("xyz"))
	p.clock.Run()
	sn := p.b.SnapshotSocket(srv)
	sn.ReadQueue[0] = '!'
	if string(srv.Peek()) != "xyz" {
		t.Fatal("snapshot aliases live read queue")
	}
}

func TestRestoredSocketRetransmitsAfterRepairRTO(t *testing.T) {
	// Failover scenario: server state moves to a backup stack; the
	// backup must retransmit the unacked response and the client's
	// connection must survive — no RSTs anywhere (§V-E, §VII-A).
	c := simtime.NewClock()
	sw := NewSwitch(c, 100*simtime.Microsecond, 28*simtime.Millisecond)
	pc := sw.Attach("client")
	pp := sw.Attach("primary")
	pbk := sw.Attach("backup")
	client := NewStack(c, "10.0.0.1", pc.Send)
	primary := NewStack(c, "10.0.0.9", pp.Send)
	backup := NewStack(c, "10.0.0.9", pbk.Send) // same service IP
	pc.SetReceiver(client.Receive)
	pp.SetReceiver(primary.Receive)
	pbk.SetReceiver(backup.Receive)
	sw.Learn(client.IP, pc)
	sw.Learn("10.0.0.9", pp)

	var srv, cl *Socket
	var reply []byte
	primary.Listen(80, func(s *Socket) { srv = s })
	client.Connect("10.0.0.9", 80, func(s *Socket) {
		cl = s
		s.OnData = func(s *Socket) { reply = append(reply, s.ReadAll()...) }
	})
	c.Run()

	// Server responds, but the response never leaves the primary host
	// (checkpointed then host dies): emulate by disconnecting the
	// primary port BEFORE sending, so the write queue holds the data.
	pp.SetEnabled(false)
	srv.Send([]byte("RESULT"))
	srv.EnterRepair()
	sn := primary.SnapshotSocket(srv)

	// Failover: restore at backup, gratuitous ARP, leave repair with
	// the repair-RTO patch.
	failoverStart := c.Now()
	r := backup.RestoreSocket(sn)
	sw.GratuitousARP("10.0.0.9", pbk, func() {
		r.LeaveRepair(true)
	})
	c.Run()

	if string(reply) != "RESULT" {
		t.Fatalf("client reply = %q, want RESULT via backup retransmission", reply)
	}
	if cl.Reset || client.RSTsSent() > 0 || backup.RSTsSent() > 0 {
		t.Fatal("connection broke during failover")
	}
	// With the patch the retransmit fires at RTOMin (200 ms) after
	// leaving repair, not the ≥1 s fresh-socket default.
	elapsed := c.Now().Sub(failoverStart)
	if elapsed > 400*simtime.Millisecond {
		t.Fatalf("failover took %v; repair-RTO patch should bound it near 228ms", elapsed)
	}
}

func TestRestoredSocketWithoutPatchIsSlow(t *testing.T) {
	c := simtime.NewClock()
	sw := NewSwitch(c, 100*simtime.Microsecond, 0)
	pc := sw.Attach("client")
	pbk := sw.Attach("backup")
	client := NewStack(c, "10.0.0.1", pc.Send)
	backup := NewStack(c, "10.0.0.9", pbk.Send)
	pc.SetReceiver(client.Receive)
	pbk.SetReceiver(backup.Receive)
	sw.Learn(client.IP, pc)

	// Hand-build matching endpoint states (as if checkpointed).
	clSn := SocketSnapshot{State: StateEstablished, LocalPort: 50000, Remote: "10.0.0.9", RemotePort: 80, SndUna: 100, SndNxt: 100, RcvNxt: 500}
	srvSn := SocketSnapshot{
		State: StateEstablished, LocalPort: 80, Remote: "10.0.0.1", RemotePort: 50000,
		SndUna: 500, SndNxt: 506, RcvNxt: 100,
		WriteQueue: []SegmentSnapshot{{Seq: 500, Data: []byte("RESULT")}},
	}
	var got []byte
	clSock := client.RestoreSocket(clSn)
	clSock.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
	clSock.LeaveRepair(true)
	r := backup.RestoreSocket(srvSn)
	sw.Learn("10.0.0.9", pbk)
	start := c.Now()
	r.LeaveRepair(false) // stock kernel: fresh-socket RTO ≥ 1s
	c.RunUntil(start.Add(900 * simtime.Millisecond))
	if len(got) != 0 {
		t.Fatal("data arrived before the 1s fresh-socket RTO")
	}
	c.Run()
	if string(got) != "RESULT" {
		t.Fatalf("got %q", got)
	}
}

// Property: a byte stream pushed through the stack in arbitrary chunk
// sizes arrives intact and in order.
func TestPropertyStreamIntegrity(t *testing.T) {
	f := func(chunks [][]byte) bool {
		c := simtime.NewClock()
		sw := NewSwitch(c, 10*simtime.Microsecond, 0)
		pa := sw.Attach("a")
		pb := sw.Attach("b")
		a := NewStack(c, "a", pa.Send)
		b := NewStack(c, "b", pb.Send)
		pa.SetReceiver(a.Receive)
		pb.SetReceiver(b.Receive)
		sw.Learn("a", pa)
		sw.Learn("b", pb)

		var want, got []byte
		b.Listen(1, func(s *Socket) {
			s.OnData = func(s *Socket) { got = append(got, s.ReadAll()...) }
		})
		a.Connect("b", 1, func(s *Socket) {
			for _, ch := range chunks {
				if len(ch) > 4000 {
					ch = ch[:4000]
				}
				want = append(want, ch...)
				s.Send(ch)
			}
		})
		c.Run()
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot → restore preserves every repair-visible field.
func TestPropertySnapshotRestoreIdentity(t *testing.T) {
	f := func(una, delta uint16, rq, wq []byte) bool {
		c := simtime.NewClock()
		st := NewStack(c, "x", nil)
		sn := SocketSnapshot{
			State: StateEstablished, LocalPort: 80, Remote: "y", RemotePort: 9,
			SndUna: uint32(una), SndNxt: uint32(una) + uint32(len(wq)),
			RcvNxt:    uint32(delta),
			ReadQueue: rq,
		}
		if len(wq) > 0 {
			sn.WriteQueue = []SegmentSnapshot{{Seq: uint32(una), Data: wq}}
		}
		s := st.RestoreSocket(sn)
		sn2 := st.SnapshotSocket(s)
		if sn2.SndUna != sn.SndUna || sn2.SndNxt != sn.SndNxt || sn2.RcvNxt != sn.RcvNxt {
			return false
		}
		if !bytes.Equal(sn2.ReadQueue, sn.ReadQueue) {
			return false
		}
		if len(sn.WriteQueue) != len(sn2.WriteQueue) {
			return false
		}
		for i := range sn.WriteQueue {
			if !bytes.Equal(sn.WriteQueue[i].Data, sn2.WriteQueue[i].Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotChargesKernelMeter(t *testing.T) {
	p := newPair(t)
	k := newNetTestKernel()
	p.b.Kernel = k
	var srv *Socket
	p.b.Listen(80, func(s *Socket) { srv = s })
	var cl *Socket
	p.a.Connect(p.b.IP, 80, func(s *Socket) { cl = s })
	p.clock.Run()
	cl.Send(bytes.Repeat([]byte{1}, 2048))
	p.clock.Run()
	m := k.StartMeter()
	p.b.SnapshotSocket(srv)
	cost := m.Stop()
	want := k.Costs.SockRepairPerSocket + 2*k.Costs.SockRepairPerKB
	if cost != want {
		t.Fatalf("snapshot cost = %v, want %v", cost, want)
	}
}
