package simnet

// TCP repair mode (§II-B): when a socket is placed in repair mode, its
// critical state — sequence numbers, acknowledgment numbers, the write
// queue (transmitted but not acknowledged) and the read queue (received
// but not read by the process) — can be read and written directly, and
// the socket emits no packets.

import "nilicon/internal/simtime"

// SegmentSnapshot is one write-queue segment in a socket checkpoint.
type SegmentSnapshot struct {
	Seq  uint32
	Data []byte
	FIN  bool
}

// SocketSnapshot is the repair-mode state of one TCP socket.
type SocketSnapshot struct {
	ID         int
	State      TCPState
	LocalPort  int
	Remote     Addr
	RemotePort int
	SndUna     uint32
	SndNxt     uint32
	RcvNxt     uint32
	WriteQueue []SegmentSnapshot
	ReadQueue  []byte
}

// Size returns the snapshot's transfer size in bytes (queues plus a
// fixed header), used for state-size accounting.
func (sn SocketSnapshot) Size() int64 {
	n := int64(64) // fixed fields
	for _, sg := range sn.WriteQueue {
		n += int64(len(sg.Data)) + 8
	}
	return n + int64(len(sn.ReadQueue))
}

// EnterRepair puts the socket in repair mode: no packets are emitted and
// pending timers are disarmed.
func (s *Socket) EnterRepair() {
	s.repair = true
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
		s.rtoTimer = nil
	}
}

// LeaveRepair exits repair mode. If repairRTOPatch is true, NiLiCon's
// two-line kernel change applies: the retransmission timeout of a socket
// leaving repair mode is set to the minimum (200 ms) instead of the
// fresh-socket default of at least one second (§V-E). If the write queue
// is non-empty the retransmission timer is armed so unacknowledged data
// reaches the client again after failover.
func (s *Socket) LeaveRepair(repairRTOPatch bool) {
	s.repair = false
	if repairRTOPatch {
		s.rto = s.stack.RTOMin
	} else {
		s.rto = s.stack.RTOInitial
	}
	if s.wasRestore {
		// Credit the time since the queue was repaired: the kernel armed
		// the timer then, and the remaining restore steps overlapped
		// with the countdown (this is why Table II's TCP component is
		// smaller than the full RTO).
		elapsed := s.stack.clock.Now().Sub(s.restoredAt)
		remaining := s.rto - elapsed
		if remaining < simtime.Millisecond {
			remaining = simtime.Millisecond
		}
		s.wasRestore = false
		if s.rtoTimer != nil {
			s.rtoTimer.Cancel()
		}
		if len(s.sendQ) > 0 {
			s.rtoTimer = s.stack.clock.Schedule(remaining, func() { s.retransmitAll() })
		}
		return
	}
	s.armRTO()
}

// InRepair reports whether the socket is in repair mode.
func (s *Socket) InRepair() bool { return s.repair }

// SetRestoredAt adjusts the time the socket's queues are considered to
// have been repaired. Restore happens at a single instant in the event
// loop but spans real time on the host; the backup agent uses this to
// place the repair at the point within the restore window where it
// actually occurs, so the retransmission-timer credit in LeaveRepair is
// accurate (Table II's TCP component).
func (s *Socket) SetRestoredAt(t simtime.Time) {
	if s.wasRestore {
		s.restoredAt = t
	}
}

// SnapshotSocket collects a socket's repair-mode state, charging the
// per-socket and per-queued-byte costs to the stack's kernel meter.
func (st *Stack) SnapshotSocket(s *Socket) SocketSnapshot {
	queued := 0
	sn := SocketSnapshot{
		ID:         s.ID,
		State:      s.State,
		LocalPort:  s.LocalPort,
		Remote:     s.Remote,
		RemotePort: s.RemotePort,
		SndUna:     s.sndUna,
		SndNxt:     s.sndNxt,
		RcvNxt:     s.rcvNxt,
	}
	for _, sg := range s.sendQ {
		data := make([]byte, len(sg.data))
		copy(data, sg.data)
		sn.WriteQueue = append(sn.WriteQueue, SegmentSnapshot{Seq: sg.seq, Data: data, FIN: sg.fin})
		queued += len(sg.data)
	}
	sn.ReadQueue = make([]byte, len(s.recvBuf))
	copy(sn.ReadQueue, s.recvBuf)
	queued += len(s.recvBuf)

	if st.Kernel != nil {
		c := st.Kernel.Costs
		st.Kernel.Charge(c.SockRepairPerSocket + scaleKB(c.SockRepairPerKB, queued))
	}
	return sn
}

// RestoreSocket recreates a socket from a snapshot, in repair mode. The
// caller installs callbacks and then calls LeaveRepair. The restore cost
// is charged to the stack's kernel meter.
func (st *Stack) RestoreSocket(sn SocketSnapshot) *Socket {
	s := st.newSocket(sn.LocalPort, sn.Remote, sn.RemotePort)
	s.State = sn.State
	s.restoredAt = st.clock.Now()
	s.wasRestore = true
	s.sndUna = sn.SndUna
	s.sndNxt = sn.SndNxt
	s.rcvNxt = sn.RcvNxt
	s.repair = true
	for _, sg := range sn.WriteQueue {
		data := make([]byte, len(sg.Data))
		copy(data, sg.Data)
		s.sendQ = append(s.sendQ, segment{seq: sg.Seq, data: data, fin: sg.FIN})
	}
	s.recvBuf = append(s.recvBuf, sn.ReadQueue...)
	if st.Kernel != nil {
		st.Kernel.Charge(st.Kernel.Costs.RestorePerSocket)
	}
	return s
}

func scaleKB(perKB simtime.Duration, bytes int) simtime.Duration {
	return perKB * simtime.Duration(bytes) / 1024
}
