package simnet

import (
	"testing/quick"

	"testing"

	"nilicon/internal/simtime"
)

func TestSwitchForwardsByARP(t *testing.T) {
	c := simtime.NewClock()
	sw := NewSwitch(c, simtime.Millisecond, 28*simtime.Millisecond)
	pa := sw.Attach("a")
	pb := sw.Attach("b")
	sw.Learn("10.0.0.1", pa)
	sw.Learn("10.0.0.2", pb)
	var got []Packet
	pb.SetReceiver(func(p Packet) { got = append(got, p) })
	pa.Send(Packet{Kind: KindTCP, Src: "10.0.0.1", Dst: "10.0.0.2"})
	if len(got) != 0 {
		t.Fatal("delivery should be delayed by link latency")
	}
	c.Run()
	if len(got) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(got))
	}
	if c.Now() != simtime.Time(simtime.Millisecond) {
		t.Fatalf("delivered at %v, want 1ms", c.Now())
	}
}

func TestSwitchDropsUnknownDestination(t *testing.T) {
	c := simtime.NewClock()
	sw := NewSwitch(c, 0, 0)
	pa := sw.Attach("a")
	pa.Send(Packet{Dst: "10.9.9.9"})
	c.Run()
	if sw.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", sw.Dropped())
	}
}

func TestDisabledPortDropsIngressAndEgress(t *testing.T) {
	c := simtime.NewClock()
	sw := NewSwitch(c, 0, 0)
	pa := sw.Attach("a")
	pb := sw.Attach("b")
	sw.Learn("b", pb)
	n := 0
	pb.SetReceiver(func(Packet) { n++ })

	pb.SetEnabled(false)
	pa.Send(Packet{Dst: "b"})
	c.Run()
	if n != 0 || sw.Dropped() != 1 {
		t.Fatalf("disabled ingress: n=%d dropped=%d", n, sw.Dropped())
	}

	pb.SetEnabled(true)
	pa.SetEnabled(false)
	pa.Send(Packet{Dst: "b"})
	c.Run()
	if n != 0 {
		t.Fatal("disabled port transmitted")
	}
}

func TestDisconnectWhileInFlight(t *testing.T) {
	c := simtime.NewClock()
	sw := NewSwitch(c, simtime.Millisecond, 0)
	pa := sw.Attach("a")
	pb := sw.Attach("b")
	sw.Learn("b", pb)
	n := 0
	pb.SetReceiver(func(Packet) { n++ })
	pa.Send(Packet{Dst: "b"})
	// Disconnect before the frame lands.
	pb.SetEnabled(false)
	c.Run()
	if n != 0 {
		t.Fatal("frame delivered to port disconnected while in flight")
	}
}

func TestGratuitousARPRebindsAfterDelay(t *testing.T) {
	c := simtime.NewClock()
	sw := NewSwitch(c, 0, 28*simtime.Millisecond)
	pa := sw.Attach("primary")
	pb := sw.Attach("backup")
	sw.Learn("10.0.0.5", pa)
	done := simtime.Time(-1)
	sw.GratuitousARP("10.0.0.5", pb, func() { done = c.Now() })
	if sw.Lookup("10.0.0.5") != pa {
		t.Fatal("ARP rebound before propagation delay")
	}
	c.Run()
	if sw.Lookup("10.0.0.5") != pb {
		t.Fatal("ARP not rebound")
	}
	if done != simtime.Time(28*simtime.Millisecond) {
		t.Fatalf("GARP completed at %v, want 28ms", done)
	}
}

func TestLinkBandwidthSerialization(t *testing.T) {
	c := simtime.NewClock()
	// 10 Gb/s = 1.25e9 B/s; 1.25 MB takes 1 ms.
	l := NewLink(c, 50*simtime.Microsecond, 1_250_000_000)
	var t1, t2 simtime.Time
	l.Transfer(1_250_000, func() { t1 = c.Now() })
	l.Transfer(1_250_000, func() { t2 = c.Now() })
	c.Run()
	if t1 != simtime.Time(simtime.Millisecond+50*simtime.Microsecond) {
		t.Fatalf("first transfer at %v", t1)
	}
	// Second transfer serializes behind the first.
	if t2 != simtime.Time(2*simtime.Millisecond+50*simtime.Microsecond) {
		t.Fatalf("second transfer at %v (no FIFO serialization?)", t2)
	}
	if l.BytesSent() != 2_500_000 {
		t.Fatalf("BytesSent = %d", l.BytesSent())
	}
}

func TestLinkInfiniteBandwidth(t *testing.T) {
	c := simtime.NewClock()
	l := NewLink(c, simtime.Millisecond, 0)
	var at simtime.Time
	l.Transfer(1<<30, func() { at = c.Now() })
	c.Run()
	if at != simtime.Time(simtime.Millisecond) {
		t.Fatalf("infinite-bandwidth delivery at %v, want latency only", at)
	}
}

func TestLinkNegativeSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewLink(simtime.NewClock(), 0, 0).Transfer(-1, nil)
}

func TestQdiscPassThroughWhenNotReplicating(t *testing.T) {
	var out, in []Packet
	q := NewPlugQdisc(func(p Packet) { out = append(out, p) }, func(p Packet) { in = append(in, p) })
	q.Egress(Packet{Seq: 1})
	q.Ingress(Packet{Seq: 2})
	if len(out) != 1 || len(in) != 1 {
		t.Fatalf("pass-through failed: out=%d in=%d", len(out), len(in))
	}
}

func TestQdiscEpochBufferingAndRelease(t *testing.T) {
	var out []Packet
	q := NewPlugQdisc(func(p Packet) { out = append(out, p) }, nil)
	q.SetReplicating(true)

	q.Egress(Packet{Seq: 1}) // epoch 0
	q.Egress(Packet{Seq: 2})
	q.Rotate(0)
	q.Egress(Packet{Seq: 3}) // epoch 1
	q.Rotate(1)

	if len(out) != 0 {
		t.Fatal("packets leaked before release")
	}
	if q.PendingEgress() != 3 {
		t.Fatalf("pending = %d, want 3", q.PendingEgress())
	}
	q.Release(0)
	if len(out) != 2 || out[0].Seq != 1 || out[1].Seq != 2 {
		t.Fatalf("release(0) sent %v", out)
	}
	q.Release(1)
	if len(out) != 3 || out[2].Seq != 3 {
		t.Fatalf("release(1) sent %v", out)
	}
}

func TestQdiscReleaseIsOrdered(t *testing.T) {
	var out []Packet
	q := NewPlugQdisc(func(p Packet) { out = append(out, p) }, nil)
	q.SetReplicating(true)
	for i := uint32(1); i <= 5; i++ {
		q.Egress(Packet{Seq: i})
		q.Rotate(uint64(i - 1))
	}
	q.Release(4)
	for i, p := range out {
		if p.Seq != uint32(i+1) {
			t.Fatalf("out-of-order release: %v", out)
		}
	}
}

func TestQdiscDiscardPending(t *testing.T) {
	var out []Packet
	q := NewPlugQdisc(func(p Packet) { out = append(out, p) }, nil)
	q.SetReplicating(true)
	q.Egress(Packet{Seq: 1})
	q.Rotate(0)
	q.Egress(Packet{Seq: 2})
	q.DiscardPending()
	q.Release(^uint64(0))
	if len(out) != 0 {
		t.Fatal("discarded packets were released")
	}
}

func TestQdiscSetReplicatingOffFlushes(t *testing.T) {
	var out []Packet
	q := NewPlugQdisc(func(p Packet) { out = append(out, p) }, nil)
	q.SetReplicating(true)
	q.Egress(Packet{Seq: 1})
	q.SetReplicating(false)
	if len(out) != 1 {
		t.Fatal("buffered egress not flushed when replication stopped")
	}
}

func TestQdiscInputBlockingFirewallDrops(t *testing.T) {
	var in []Packet
	q := NewPlugQdisc(nil, func(p Packet) { in = append(in, p) })
	q.SetInputMode(FirewallDrop)
	q.BlockInput()
	q.Ingress(Packet{Seq: 1})
	q.UnblockInput()
	q.Ingress(Packet{Seq: 2})
	if len(in) != 1 || in[0].Seq != 2 {
		t.Fatalf("firewall mode: delivered %v, want only post-unblock packet", in)
	}
	_, _, dropped, _ := q.Stats()
	if dropped != 1 {
		t.Fatalf("dropped = %d, want 1", dropped)
	}
}

func TestQdiscInputBlockingPlugBuffers(t *testing.T) {
	var in []Packet
	q := NewPlugQdisc(nil, func(p Packet) { in = append(in, p) })
	q.SetInputMode(PlugBuffer)
	q.BlockInput()
	q.Ingress(Packet{Seq: 1})
	q.Ingress(Packet{Seq: 2})
	if len(in) != 0 {
		t.Fatal("blocked input leaked")
	}
	q.UnblockInput()
	if len(in) != 2 || in[0].Seq != 1 || in[1].Seq != 2 {
		t.Fatalf("plug mode delivered %v, want both in order", in)
	}
}

// Property: under any sequence of egress/rotate/release operations,
// (1) packets are released in exactly their egress order, (2) no packet
// is released before its epoch is acknowledged, and (3) every packet of
// an acknowledged epoch is out.
func TestPropertyQdiscEpochOrdering(t *testing.T) {
	f := func(ops []uint8) bool {
		var out []uint32
		q := NewPlugQdisc(func(p Packet) { out = append(out, p.Seq) }, nil)
		q.SetReplicating(true)
		var seq uint32
		epoch := uint64(0)
		released := ^uint64(0) // none acked yet
		sentInEpoch := map[uint64][]uint32{}
		for _, op := range ops {
			switch op % 3 {
			case 0: // egress
				seq++
				q.Egress(Packet{Seq: seq})
				sentInEpoch[epoch] = append(sentInEpoch[epoch], seq)
			case 1: // checkpoint boundary
				q.Rotate(epoch)
				epoch++
			case 2: // ack newest closed epoch
				if epoch > 0 {
					released = epoch - 1
					q.Release(released)
				}
			}
		}
		// (1) strictly increasing seq in out.
		for i := 1; i < len(out); i++ {
			if out[i] <= out[i-1] {
				return false
			}
		}
		outSet := map[uint32]bool{}
		for _, s := range out {
			outSet[s] = true
		}
		for e, seqs := range sentInEpoch {
			for _, s := range seqs {
				acked := released != ^uint64(0) && e <= released
				if acked && !outSet[s] {
					return false // (3) acked but not released
				}
				if !acked && outSet[s] {
					return false // (2) released without ack
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
