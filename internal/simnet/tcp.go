package simnet

import (
	"fmt"

	"nilicon/internal/simkernel"
	"nilicon/internal/simtime"
)

// TCPState is the connection state machine (reduced to the states the
// replication protocol interacts with).
type TCPState int

// TCP states.
const (
	StateClosed TCPState = iota
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateFinWait
	StateCloseWait
)

var tcpStateNames = [...]string{"Closed", "Listen", "SynSent", "SynRcvd", "Established", "FinWait", "CloseWait"}

func (s TCPState) String() string {
	if int(s) < len(tcpStateNames) {
		return tcpStateNames[s]
	}
	return fmt.Sprintf("TCPState(%d)", int(s))
}

// seqLT reports a < b in 32-bit sequence space.
func seqLT(a, b uint32) bool { return int32(a-b) < 0 }

// seqLE reports a <= b in 32-bit sequence space.
func seqLE(a, b uint32) bool { return int32(a-b) <= 0 }

type segment struct {
	seq  uint32
	data []byte
	fin  bool
}

func (sg segment) end() uint32 {
	e := sg.seq + uint32(len(sg.data))
	if sg.fin {
		e++
	}
	return e
}

// Socket is one TCP endpoint.
type Socket struct {
	ID         int
	stack      *Stack
	State      TCPState
	LocalPort  int
	Remote     Addr
	RemotePort int

	sndUna uint32 // oldest unacknowledged byte
	sndNxt uint32 // next byte to send
	rcvNxt uint32 // next byte expected

	// sendQ holds transmitted-but-unacknowledged segments: the "write
	// queue" TCP repair mode exposes (§II-B).
	sendQ []segment
	// recvBuf holds bytes received in order but not yet read by the
	// process: the "read queue".
	recvBuf []byte

	rto        simtime.Duration
	rtoTimer   *simtime.Event
	synTries   int
	retransmit int

	// repair marks the socket as being in TCP repair mode: no packets
	// are emitted and state can be set directly.
	repair bool
	// restoredAt records when the socket was recreated from a snapshot;
	// the retransmission timer is credited with the time already spent
	// in later restore steps (the kernel arms the timer when the write
	// queue is repaired, not when repair mode ends).
	restoredAt simtime.Time
	wasRestore bool

	// Reset/Closed report connection termination.
	Reset  bool
	Closed bool

	// Callbacks into the owning application.
	OnData    func(*Socket)
	OnConnect func(*Socket)
	OnReset   func(*Socket)
	OnClose   func(*Socket)

	// acceptCb fires when a SynRcvd socket completes the handshake.
	acceptCb func(*Socket)

	bytesIn, bytesOut int64
}

func (s *Socket) String() string {
	return fmt.Sprintf("sock%d[%s :%d<->%s:%d una=%d nxt=%d rcv=%d]",
		s.ID, s.State, s.LocalPort, s.Remote, s.RemotePort, s.sndUna, s.sndNxt, s.rcvNxt)
}

// Listener accepts incoming connections on a port.
type Listener struct {
	Port     int
	OnAccept func(*Socket)
}

type connKey struct {
	remote     Addr
	remotePort int
	localPort  int
}

// Stack is one host's (or container network namespace's) TCP stack.
type Stack struct {
	clock *simtime.Clock
	// Kernel, when set, receives virtual-time charges for repair-mode
	// operations (socket checkpointing costs).
	Kernel *simkernel.Kernel

	IP  Addr
	out func(Packet)

	sockets   map[connKey]*Socket
	byID      map[int]*Socket
	listeners map[int]*Listener
	nextID    int
	nextPort  int

	// MSS is the maximum segment payload size.
	MSS int
	// RTOMin is the repair-mode retransmission timeout NiLiCon's kernel
	// patch applies (200 ms, §V-E).
	RTOMin simtime.Duration
	// RTOInitial is the default timeout for fresh sockets (≥1 s), which
	// is what makes recovery slow without the patch.
	RTOInitial simtime.Duration

	// OnAppSend, when set, observes every application-level Send that is
	// accepted for transmission (payload before segmentation). Unlike a
	// qdisc-level tap it fires even for sockets in repair mode, so the
	// record/replay divergence oracle can digest the output a restored
	// container produces while its network is still quiesced and compare
	// it to the primary's recorded stream.
	OnAppSend func(*Socket, []byte)

	rstSent int
}

// NewStack creates a TCP stack with address ip whose egress goes to out.
func NewStack(clock *simtime.Clock, ip Addr, out func(Packet)) *Stack {
	return &Stack{
		clock:      clock,
		IP:         ip,
		out:        out,
		sockets:    make(map[connKey]*Socket),
		byID:       make(map[int]*Socket),
		listeners:  make(map[int]*Listener),
		nextID:     1,
		nextPort:   49152,
		MSS:        1460,
		RTOMin:     200 * simtime.Millisecond,
		RTOInitial: simtime.Second,
	}
}

// SetOutput replaces the egress path.
func (st *Stack) SetOutput(out func(Packet)) { st.out = out }

// RSTsSent counts reset packets this stack has emitted; the recovery
// validation asserts this stays zero at the backup (§III).
func (st *Stack) RSTsSent() int { return st.rstSent }

// Sockets returns all sockets in creation order.
func (st *Stack) Sockets() []*Socket {
	out := make([]*Socket, 0, len(st.byID))
	for id := 1; id < st.nextID; id++ {
		if s, ok := st.byID[id]; ok {
			out = append(out, s)
		}
	}
	return out
}

// SocketByID returns the socket with the given ID (nil if gone).
func (st *Stack) SocketByID(id int) *Socket { return st.byID[id] }

// Listen registers an accept callback for a port.
func (st *Stack) Listen(port int, onAccept func(*Socket)) *Listener {
	l := &Listener{Port: port, OnAccept: onAccept}
	st.listeners[port] = l
	return l
}

// Unlisten removes a listener.
func (st *Stack) Unlisten(port int) { delete(st.listeners, port) }

// ListenPorts returns the set of ports with registered listeners.
func (st *Stack) ListenPorts() map[int]bool {
	out := make(map[int]bool, len(st.listeners))
	for p := range st.listeners {
		out[p] = true
	}
	return out
}

func (st *Stack) newSocket(local int, remote Addr, remotePort int) *Socket {
	s := &Socket{
		ID:         st.nextID,
		stack:      st,
		LocalPort:  local,
		Remote:     remote,
		RemotePort: remotePort,
		rto:        st.RTOInitial,
	}
	st.nextID++
	st.byID[s.ID] = s
	st.sockets[connKey{remote, remotePort, local}] = s
	return s
}

// Connect opens a connection to remote:port. The returned socket is in
// SynSent; OnConnect fires when established. SYN loss is retried with
// exponential backoff (1 s, 2 s, 4 s), reproducing the multi-second
// connection-establishment delays dropped SYNs cause (§V-C).
func (st *Stack) Connect(remote Addr, port int, onConnect func(*Socket)) *Socket {
	s := st.newSocket(st.allocPort(), remote, port)
	s.State = StateSynSent
	s.OnConnect = onConnect
	iss := uint32(s.ID) * 100000
	s.sndUna, s.sndNxt = iss, iss+1
	st.emit(s, FlagSYN, iss, 0, nil)
	st.armSynTimer(s)
	return s
}

func (st *Stack) allocPort() int {
	p := st.nextPort
	st.nextPort++
	return p
}

func (st *Stack) armSynTimer(s *Socket) {
	backoff := st.RTOInitial << uint(s.synTries)
	s.rtoTimer = st.clock.Schedule(backoff, func() {
		if s.State != StateSynSent {
			return
		}
		s.synTries++
		if s.synTries > 4 {
			s.State = StateClosed
			s.Reset = true
			st.drop(s)
			if s.OnReset != nil {
				s.OnReset(s)
			}
			return
		}
		st.emit(s, FlagSYN, s.sndUna, 0, nil)
		st.armSynTimer(s)
	})
}

// Send queues data for transmission and emits it in MSS-sized segments.
// Bytes stay in the write queue until acknowledged.
func (s *Socket) Send(data []byte) {
	if s.State != StateEstablished && s.State != StateCloseWait {
		return
	}
	if s.stack.OnAppSend != nil {
		s.stack.OnAppSend(s, data)
	}
	for len(data) > 0 {
		n := s.stack.MSS
		if n > len(data) {
			n = len(data)
		}
		chunk := make([]byte, n)
		copy(chunk, data[:n])
		sg := segment{seq: s.sndNxt, data: chunk}
		s.sendQ = append(s.sendQ, sg)
		s.sndNxt += uint32(n)
		s.bytesOut += int64(n)
		s.stack.emit(s, FlagACK, sg.seq, s.rcvNxt, chunk)
		data = data[n:]
	}
	s.armRTO()
}

// Close sends FIN after all queued data.
func (s *Socket) Close() {
	if s.State != StateEstablished {
		return
	}
	s.State = StateFinWait
	sg := segment{seq: s.sndNxt, fin: true}
	s.sendQ = append(s.sendQ, sg)
	s.sndNxt++
	s.stack.emit(s, FlagFIN|FlagACK, sg.seq, s.rcvNxt, nil)
	s.armRTO()
}

// Available returns the number of unread bytes in the read queue.
func (s *Socket) Available() int { return len(s.recvBuf) }

// ReadAll drains and returns the read queue.
func (s *Socket) ReadAll() []byte {
	b := s.recvBuf
	s.recvBuf = nil
	return b
}

// ReadN reads up to n bytes from the read queue.
func (s *Socket) ReadN(n int) []byte {
	if n > len(s.recvBuf) {
		n = len(s.recvBuf)
	}
	b := s.recvBuf[:n]
	s.recvBuf = s.recvBuf[n:]
	return b
}

// Peek returns the read queue without consuming it.
func (s *Socket) Peek() []byte { return s.recvBuf }

// BytesIn and BytesOut return transfer totals.
func (s *Socket) BytesIn() int64  { return s.bytesIn }
func (s *Socket) BytesOut() int64 { return s.bytesOut }

// UnackedBytes returns the size of the write queue.
func (s *Socket) UnackedBytes() int {
	n := 0
	for _, sg := range s.sendQ {
		n += len(sg.data)
	}
	return n
}

func (s *Socket) armRTO() {
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
	}
	if len(s.sendQ) == 0 || s.repair {
		return
	}
	s.rtoTimer = s.stack.clock.Schedule(s.rto, func() { s.retransmitAll() })
}

func (s *Socket) retransmitAll() {
	if len(s.sendQ) == 0 || s.repair || s.State == StateClosed {
		return
	}
	for _, sg := range s.sendQ {
		flags := FlagACK
		if sg.fin {
			flags |= FlagFIN
		}
		s.stack.emit(s, flags, sg.seq, s.rcvNxt, sg.data)
		s.retransmit++
	}
	if s.rto < 8*simtime.Second {
		s.rto *= 2
	}
	s.armRTO()
}

// Retransmits returns how many segments this socket retransmitted.
func (s *Socket) Retransmits() int { return s.retransmit }

func (st *Stack) emit(s *Socket, flags int, seq, ack uint32, payload []byte) {
	if s.repair {
		return
	}
	if st.out == nil {
		return
	}
	st.out(Packet{
		Kind: KindTCP, Src: st.IP, Dst: s.Remote,
		SrcPort: s.LocalPort, DstPort: s.RemotePort,
		Flags: flags, Seq: seq, Ack: ack, Payload: payload,
	})
}

func (st *Stack) sendRST(to Packet) {
	st.rstSent++
	if st.out == nil {
		return
	}
	st.out(Packet{
		Kind: KindTCP, Src: st.IP, Dst: to.Src,
		SrcPort: to.DstPort, DstPort: to.SrcPort,
		Flags: FlagRST, Seq: to.Ack, Ack: to.Seq + uint32(len(to.Payload)),
	})
}

func (st *Stack) drop(s *Socket) {
	delete(st.sockets, connKey{s.Remote, s.RemotePort, s.LocalPort})
	delete(st.byID, s.ID)
	if s.rtoTimer != nil {
		s.rtoTimer.Cancel()
	}
}

// Receive is the stack's ingress entry point.
func (st *Stack) Receive(pkt Packet) {
	if pkt.Kind != KindTCP {
		return
	}
	key := connKey{pkt.Src, pkt.SrcPort, pkt.DstPort}
	s := st.sockets[key]
	if s == nil {
		if pkt.Flags&FlagSYN != 0 && pkt.Flags&FlagACK == 0 {
			if l := st.listeners[pkt.DstPort]; l != nil {
				st.accept(l, pkt)
				return
			}
		}
		if pkt.Flags&FlagRST == 0 {
			// No socket for an arriving packet: the kernel answers with
			// RST. This is exactly what breaks connections if input is
			// not blocked during recovery (§III).
			st.sendRST(pkt)
		}
		return
	}
	st.handle(s, pkt)
}

func (st *Stack) accept(l *Listener, syn Packet) {
	s := st.newSocket(syn.DstPort, syn.Src, syn.SrcPort)
	s.State = StateSynRcvd
	s.rcvNxt = syn.Seq + 1
	iss := uint32(s.ID)*100000 + 50000
	s.sndUna, s.sndNxt = iss, iss+1
	s.acceptCb = l.OnAccept
	st.emit(s, FlagSYN|FlagACK, iss, s.rcvNxt, nil)
}

func (st *Stack) handle(s *Socket, pkt Packet) {
	if pkt.Flags&FlagRST != 0 {
		s.State = StateClosed
		s.Reset = true
		st.drop(s)
		if s.OnReset != nil {
			s.OnReset(s)
		}
		return
	}

	switch s.State {
	case StateSynSent:
		if pkt.Flags&FlagSYN != 0 && pkt.Flags&FlagACK != 0 && pkt.Ack == s.sndNxt {
			s.State = StateEstablished
			s.rcvNxt = pkt.Seq + 1
			s.sndUna = pkt.Ack
			s.rto = st.RTOMin
			if s.rtoTimer != nil {
				s.rtoTimer.Cancel()
			}
			st.emit(s, FlagACK, s.sndNxt, s.rcvNxt, nil)
			if s.OnConnect != nil {
				s.OnConnect(s)
			}
		}
		return
	case StateSynRcvd:
		if pkt.Flags&FlagACK != 0 && pkt.Ack == s.sndNxt {
			s.State = StateEstablished
			s.rto = st.RTOMin
			if s.acceptCb != nil {
				s.acceptCb(s)
			}
			// The handshake ACK may carry data; fall through.
		} else if pkt.Flags&FlagSYN != 0 {
			// Duplicate SYN (our SYN-ACK was lost/blocked): re-answer.
			st.emit(s, FlagSYN|FlagACK, s.sndUna, s.rcvNxt, nil)
			return
		} else {
			return
		}
	}

	// ACK processing: drop fully acknowledged segments.
	if pkt.Flags&FlagACK != 0 && seqLT(s.sndUna, pkt.Ack) && seqLE(pkt.Ack, s.sndNxt) {
		s.sndUna = pkt.Ack
		i := 0
		for ; i < len(s.sendQ); i++ {
			if seqLT(pkt.Ack, s.sendQ[i].end()) {
				break
			}
		}
		s.sendQ = s.sendQ[i:]
		if len(s.sendQ) == 0 {
			s.rto = st.RTOMin
			if s.rtoTimer != nil {
				s.rtoTimer.Cancel()
			}
			if s.State == StateFinWait {
				s.State = StateClosed
				st.drop(s)
				if s.OnClose != nil {
					s.OnClose(s)
				}
				return
			}
		} else {
			s.armRTO()
		}
	}

	// Data processing (in-order only; out-of-order segments are dropped
	// and recovered by retransmission — Go-Back-N).
	if len(pkt.Payload) > 0 {
		seq := pkt.Seq
		payload := pkt.Payload
		if seqLT(seq, s.rcvNxt) {
			// Duplicate or partial overlap: skip what we already have.
			skip := s.rcvNxt - seq
			if uint32(len(payload)) <= skip {
				st.emit(s, FlagACK, s.sndNxt, s.rcvNxt, nil) // pure dup: re-ACK
				return
			}
			payload = payload[skip:]
			seq = s.rcvNxt
		}
		if seq == s.rcvNxt {
			s.recvBuf = append(s.recvBuf, payload...)
			s.rcvNxt += uint32(len(payload))
			s.bytesIn += int64(len(payload))
			st.emit(s, FlagACK, s.sndNxt, s.rcvNxt, nil)
			if s.OnData != nil {
				s.OnData(s)
			}
		} else {
			// Gap: dup-ACK for what we expect.
			st.emit(s, FlagACK, s.sndNxt, s.rcvNxt, nil)
		}
	}

	if pkt.Flags&FlagFIN != 0 && pkt.Seq+uint32(len(pkt.Payload)) == s.rcvNxt ||
		pkt.Flags&FlagFIN != 0 && pkt.Seq == s.rcvNxt {
		s.rcvNxt++
		s.State = StateCloseWait
		st.emit(s, FlagACK, s.sndNxt, s.rcvNxt, nil)
		s.Closed = true
		if s.OnClose != nil {
			s.OnClose(s)
		}
	}
}
