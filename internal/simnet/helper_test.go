package simnet

import (
	"nilicon/internal/simkernel"
	"nilicon/internal/simtime"
)

func newNetTestKernel() *simkernel.Kernel {
	return simkernel.NewKernel(simtime.NewClock())
}
