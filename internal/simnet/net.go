// Package simnet is the simulated network substrate: an L2 switch with an
// ARP table (the virtual bridge containers attach to), point-to-point
// links with bandwidth and latency (the dedicated 10 GbE replication
// link), a small but real TCP implementation with sequence numbers,
// cumulative ACKs, retransmission timers and RST semantics, TCP repair
// mode for checkpoint/restore of established connections (§II-B), and
// the sch_plug-style qdisc NiLiCon uses to buffer container egress and
// block ingress during checkpoints (§II-A, §V-C).
package simnet

import (
	"fmt"

	"nilicon/internal/simtime"
)

// Addr is an L3 address ("10.0.0.2"). The simulation does not model
// subnets; the switch forwards purely on its ARP table.
type Addr string

// PacketKind distinguishes TCP segments from ARP frames.
type PacketKind int

// Packet kinds.
const (
	KindTCP PacketKind = iota
	KindARP
)

// TCP header flags.
const (
	FlagSYN = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Packet is one frame on the wire.
type Packet struct {
	Kind    PacketKind
	Src     Addr
	Dst     Addr
	SrcPort int
	DstPort int
	Flags   int
	Seq     uint32
	Ack     uint32
	Payload []byte
}

// Len returns the modeled wire size in bytes (40-byte header + payload).
func (p Packet) Len() int { return 40 + len(p.Payload) }

func (p Packet) String() string {
	f := ""
	if p.Flags&FlagSYN != 0 {
		f += "S"
	}
	if p.Flags&FlagACK != 0 {
		f += "A"
	}
	if p.Flags&FlagFIN != 0 {
		f += "F"
	}
	if p.Flags&FlagRST != 0 {
		f += "R"
	}
	return fmt.Sprintf("%s:%d>%s:%d %s seq=%d ack=%d len=%d",
		p.Src, p.SrcPort, p.Dst, p.DstPort, f, p.Seq, p.Ack, len(p.Payload))
}

// Port is one attachment point on the switch.
type Port struct {
	sw      *Switch
	name    string
	rx      func(Packet)
	enabled bool
	// clock, when set, is the simulated host's clock view: frames are
	// delivered (and gratuitous-ARP rebinds applied) on the receiving
	// host's shard. Nil ports deliver on the switch's own clock, which
	// on a single-clock topology is the same thing.
	clock *simtime.Clock
}

// Name returns the port's label.
func (p *Port) Name() string { return p.name }

// SetReceiver installs the ingress handler.
func (p *Port) SetReceiver(fn func(Packet)) { p.rx = fn }

// SetEnabled connects or disconnects the port from the bridge. A
// disabled port drops all ingress — this is how the backup agent
// disconnects the container's network namespace from the virtual bridge
// during recovery (§IV).
func (p *Port) SetEnabled(on bool) { p.enabled = on }

// Enabled reports the port state.
func (p *Port) Enabled() bool { return p.enabled }

// Send puts a frame on the wire from this port.
func (p *Port) Send(pkt Packet) { p.sw.forward(p, pkt) }

// Switch is the L2 switch / virtual bridge. Delivery is by destination
// address through the ARP table; unknown destinations are dropped.
type Switch struct {
	clock   *simtime.Clock
	latency simtime.Duration
	// arpDelay models how long a gratuitous ARP takes to propagate and
	// take effect; Table II measures this at 28 ms.
	arpDelay simtime.Duration
	ports    []*Port
	arp      map[Addr]*Port
	dropped  int
}

// NewSwitch creates a switch with the given per-hop latency and
// gratuitous-ARP propagation delay.
func NewSwitch(clock *simtime.Clock, latency, arpDelay simtime.Duration) *Switch {
	return &Switch{clock: clock, latency: latency, arpDelay: arpDelay, arp: make(map[Addr]*Port)}
}

// Attach adds a port delivering on the switch's clock.
func (s *Switch) Attach(name string) *Port {
	return s.AttachOn(name, nil)
}

// AttachOn adds a port that delivers ingress on the given host clock.
// On a sharded engine this pins the port's traffic to the host's shard;
// the switch's per-hop latency becomes the conservative lookahead of
// the shard boundary (see ObserveLookahead).
func (s *Switch) AttachOn(name string, clock *simtime.Clock) *Port {
	p := &Port{sw: s, name: name, enabled: true, clock: clock}
	if clock != nil {
		if eng := clock.Engine(); eng != nil {
			eng.ObserveLookahead(s.latency)
		}
	}
	s.ports = append(s.ports, p)
	return p
}

// Learn binds an address to a port immediately (initial configuration).
func (s *Switch) Learn(addr Addr, p *Port) { s.arp[addr] = p }

// Lookup returns the port currently bound to addr (nil if none).
func (s *Switch) Lookup(addr Addr) *Port { return s.arp[addr] }

// GratuitousARP rebinds addr to p after the ARP propagation delay and
// then invokes done. The backup agent broadcasts this after restoring
// the container so client traffic reaches the new host (§VII-B). The
// rebind executes on the announcing port's clock when it has one.
func (s *Switch) GratuitousARP(addr Addr, p *Port, done func()) {
	clock := s.clock
	if p.clock != nil {
		clock = p.clock
	}
	clock.Schedule(s.arpDelay, func() {
		s.arp[addr] = p
		if done != nil {
			done()
		}
	})
}

// Dropped returns the number of frames dropped (unknown destination or
// disabled port).
func (s *Switch) Dropped() int { return s.dropped }

func (s *Switch) forward(from *Port, pkt Packet) {
	if !from.enabled {
		s.dropped++
		return
	}
	dst := s.arp[pkt.Dst]
	if dst == nil || !dst.enabled || dst.rx == nil {
		s.dropped++
		return
	}
	// Deliver on the receiving host's clock: the switch hop is the
	// shard boundary, so the frame crosses it through the engine's
	// mailbox (SendFrom). Single-clock topologies and clockless ports
	// degrade to a plain schedule on the switch's clock.
	src, dstClock := s.clock, s.clock
	if from.clock != nil {
		src = from.clock
	}
	if dst.clock != nil {
		dstClock = dst.clock
	}
	deliver := func() {
		// Re-check at delivery time: the port may have been disconnected
		// (recovery) while the frame was in flight.
		if !dst.enabled || dst.rx == nil {
			s.dropped++
			return
		}
		dst.rx(pkt)
	}
	simtime.SendFrom(src, dstClock, src.Now().Add(s.latency), deliver)
}

// Link is a dedicated point-to-point link with bandwidth and latency,
// used for the primary→backup replication channel (10 GbE in the paper).
// Transfers are serialized FIFO: a transfer begins when the link is free.
type Link struct {
	clock     *simtime.Clock
	remote    *simtime.Clock // delivery clock; nil = deliver on clock
	latency   simtime.Duration
	lookahead simtime.Duration
	bytesPerS int64
	busyUntil simtime.Time
	sent      int64
	down      bool
	drops     int64
}

// NewLink creates a link. bytesPerSecond of zero means infinite bandwidth.
func NewLink(clock *simtime.Clock, latency simtime.Duration, bytesPerSecond int64) *Link {
	return &Link{clock: clock, latency: latency, lookahead: latency, bytesPerS: bytesPerSecond}
}

// BindRemote makes deliveries execute on the far end's clock. On a
// sharded engine the link then becomes a shard boundary: deliveries
// cross through the engine's mailbox, and the link's lookahead (its
// minimum propagation delay) is reported as a conservative barrier
// bound.
func (l *Link) BindRemote(c *simtime.Clock) {
	l.remote = c
	if c != nil {
		if eng := c.Engine(); eng != nil {
			eng.ObserveLookahead(l.Lookahead())
		}
	}
}

// Lookahead returns the link's minimum propagation delay: the earliest
// a frame submitted now can affect the far end. It defaults to the
// link's latency.
func (l *Link) Lookahead() simtime.Duration { return l.lookahead }

// SetLookahead overrides the link's advertised lookahead (it must stay
// at or below the true minimum delay for conservative windows to be
// correct; lowering it is always safe, merely less parallel).
func (l *Link) SetLookahead(d simtime.Duration) { l.lookahead = d }

// deliver schedules fn at time t on the delivery clock, crossing the
// shard boundary when the link has a bound remote.
func (l *Link) deliver(t simtime.Time, fn func()) {
	if l.remote == nil {
		l.clock.ScheduleAt(t, fn)
		return
	}
	simtime.SendFrom(l.clock, l.remote, t, fn)
}

// Transfer schedules delivery of size bytes; done runs when the last
// byte arrives at the far end. Returns the delivery time. Transfers
// started or still in flight while the link is down are dropped.
func (l *Link) Transfer(size int64, done func()) simtime.Time {
	if size < 0 {
		panic("simnet: negative transfer size")
	}
	start := l.clock.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	var serialize simtime.Duration
	if l.bytesPerS > 0 {
		serialize = simtime.Duration(size * int64(simtime.Second) / l.bytesPerS)
	}
	l.busyUntil = start.Add(serialize)
	deliver := l.busyUntil.Add(l.latency)
	l.sent += size
	if done != nil {
		l.deliver(deliver, func() {
			if l.down {
				l.drops++
				return
			}
			done()
		})
	}
	return deliver
}

// TransferExpress delivers a small control message (heartbeat, ack)
// after the propagation latency only, without serializing behind queued
// bulk transfers: on the real link these ride as individual packets
// interleaved with the state stream.
func (l *Link) TransferExpress(size int64, done func()) simtime.Time {
	if size < 0 {
		panic("simnet: negative transfer size")
	}
	l.sent += size
	deliver := l.clock.Now().Add(l.latency)
	if done != nil {
		l.deliver(deliver, func() {
			if l.down {
				l.drops++
				return
			}
			done()
		})
	}
	return deliver
}

// Drops returns the number of deliveries lost to link-down cuts.
func (l *Link) Drops() int64 { return l.drops }

// Latency returns the link's propagation latency, the gap between the
// end of serialization and delivery. Schedulers that stream a transfer
// as back-to-back chunks use this to submit the next chunk exactly when
// the previous one finishes serializing, keeping the link saturated.
func (l *Link) Latency() simtime.Duration { return l.latency }

// SetDown cuts or restores the link; deliveries due while the link is
// down are lost (fail-stop fault emulation blocks all primary traffic,
// §VII-A).
func (l *Link) SetDown(down bool) { l.down = down }

// Down reports the link state.
func (l *Link) Down() bool { return l.down }

// BytesSent returns the cumulative bytes transferred.
func (l *Link) BytesSent() int64 { return l.sent }
