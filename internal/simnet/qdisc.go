package simnet

// PlugQdisc models the sch_plug queueing discipline NiLiCon uses for
// output commit (§II-A) and — in the optimized implementation — for
// input blocking (§V-C).
//
// Egress: while replication is enabled, every packet the container emits
// during epoch k is held in the current buffer. At each checkpoint the
// core rotates the buffer, tagging it with the epoch number; when the
// backup acknowledges epoch k's state, Release(k) flushes all buffers
// with epoch ≤ k. A client can therefore never observe output that is
// not covered by a committed checkpoint.
//
// Ingress: during the stop phase (and during recovery at the backup),
// input must not reach the container. Two modes reproduce the paper's
// §V-C comparison: FirewallDrop (stock CRIU; packets are dropped, so TCP
// connection establishment can stall for seconds) and PlugBuffer
// (NiLiCon; packets are buffered and delivered on unblock).

// InputBlockMode selects how blocked ingress is handled.
type InputBlockMode int

// Input blocking modes.
const (
	// FirewallDrop drops packets arriving while input is blocked (stock
	// CRIU firewall rules).
	FirewallDrop InputBlockMode = iota
	// PlugBuffer buffers packets and releases them on unblock (NiLiCon).
	PlugBuffer
)

type epochBuffer struct {
	epoch uint64
	pkts  []Packet
}

// PlugQdisc sits between a container's TCP stack and its bridge port.
type PlugQdisc struct {
	// out is the egress path toward the switch.
	out func(Packet)
	// in is the ingress path toward the container's stack.
	in func(Packet)

	replicating bool
	curEpoch    uint64
	current     []Packet
	pending     []epochBuffer

	inputBlocked bool
	inputMode    InputBlockMode
	inputBuf     []Packet

	// OnDeliver, when set, observes every packet the qdisc hands to the
	// container's stack — direct ingress and unblock flushes alike, in
	// delivery order. The record/replay recorder uses this as the
	// authoritative capture point for network-input nondeterminism: what
	// the stack saw, in the order it saw it.
	OnDeliver func(Packet)

	// Stats.
	egressBuffered  int
	egressReleased  int
	ingressDropped  int
	ingressBuffered int
}

// NewPlugQdisc creates a qdisc delivering egress via out and ingress via
// in. Replication buffering starts disabled (pass-through).
func NewPlugQdisc(out, in func(Packet)) *PlugQdisc {
	return &PlugQdisc{out: out, in: in, inputMode: PlugBuffer}
}

// SetOutput replaces the egress path (used when reattaching at restore).
func (q *PlugQdisc) SetOutput(out func(Packet)) { q.out = out }

// SetInput replaces the ingress path.
func (q *PlugQdisc) SetInput(in func(Packet)) { q.in = in }

// SetInputMode selects drop vs buffer semantics for blocked ingress.
func (q *PlugQdisc) SetInputMode(m InputBlockMode) { q.inputMode = m }

// InputMode returns the current ingress blocking mode.
func (q *PlugQdisc) InputMode() InputBlockMode { return q.inputMode }

// SetReplicating turns epoch-buffered egress on or off. Turning it off
// flushes everything held.
func (q *PlugQdisc) SetReplicating(on bool) {
	q.replicating = on
	if !on {
		q.ReleaseAll()
	}
}

// Replicating reports whether egress is epoch-buffered.
func (q *PlugQdisc) Replicating() bool { return q.replicating }

// Egress is called by the container stack for each outgoing packet.
func (q *PlugQdisc) Egress(pkt Packet) {
	if !q.replicating {
		if q.out != nil {
			q.out(pkt)
		}
		return
	}
	q.current = append(q.current, pkt)
	q.egressBuffered++
}

// Rotate closes the current epoch's egress buffer, tagging it with the
// epoch number; the core calls this when it checkpoints epoch k.
func (q *PlugQdisc) Rotate(epoch uint64) {
	if len(q.current) > 0 {
		q.pending = append(q.pending, epochBuffer{epoch: epoch, pkts: q.current})
		q.current = nil
	}
	q.curEpoch = epoch + 1
}

// Release flushes all pending buffers with epoch <= acked, in order.
func (q *PlugQdisc) Release(acked uint64) {
	i := 0
	for ; i < len(q.pending); i++ {
		if q.pending[i].epoch > acked {
			break
		}
		for _, pkt := range q.pending[i].pkts {
			q.egressReleased++
			if q.out != nil {
				q.out(pkt)
			}
		}
	}
	q.pending = q.pending[i:]
}

// ReleaseAll flushes every buffered egress packet (used when replication
// stops cleanly).
func (q *PlugQdisc) ReleaseAll() {
	q.Rotate(q.curEpoch)
	q.Release(^uint64(0))
}

// DiscardPending drops all buffered egress without sending. On failover
// the primary's buffered output must never reach the client (it reflects
// uncommitted state).
func (q *PlugQdisc) DiscardPending() {
	q.current = nil
	q.pending = nil
}

// PendingEgress returns the number of packets currently held.
func (q *PlugQdisc) PendingEgress() int {
	n := len(q.current)
	for _, b := range q.pending {
		n += len(b.pkts)
	}
	return n
}

// BlockInput begins blocking ingress according to the input mode.
func (q *PlugQdisc) BlockInput() { q.inputBlocked = true }

// UnblockInput stops blocking; in PlugBuffer mode the held packets are
// delivered in arrival order.
func (q *PlugQdisc) UnblockInput() {
	q.inputBlocked = false
	buf := q.inputBuf
	q.inputBuf = nil
	for _, pkt := range buf {
		q.deliver(pkt)
	}
}

// InputBlocked reports whether ingress is currently blocked.
func (q *PlugQdisc) InputBlocked() bool { return q.inputBlocked }

// Ingress is the bridge-port receiver: it forwards to the container's
// stack unless input is blocked.
func (q *PlugQdisc) Ingress(pkt Packet) {
	if q.inputBlocked {
		switch q.inputMode {
		case FirewallDrop:
			q.ingressDropped++
		case PlugBuffer:
			q.inputBuf = append(q.inputBuf, pkt)
			q.ingressBuffered++
		}
		return
	}
	q.deliver(pkt)
}

// deliver hands one packet to the stack, notifying the observer first so
// a recorder logs the packet before any synchronous handler output.
func (q *PlugQdisc) deliver(pkt Packet) {
	if q.OnDeliver != nil {
		q.OnDeliver(pkt)
	}
	if q.in != nil {
		q.in(pkt)
	}
}

// Stats returns (egressBuffered, egressReleased, ingressDropped,
// ingressBuffered) counters.
func (q *PlugQdisc) Stats() (int, int, int, int) {
	return q.egressBuffered, q.egressReleased, q.ingressDropped, q.ingressBuffered
}
