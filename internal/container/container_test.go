package container

import (
	"testing"

	"nilicon/internal/simkernel"
	"nilicon/internal/simnet"
	"nilicon/internal/simtime"
)

func newTestHost() (*Host, *simtime.Clock) {
	c := simtime.NewClock()
	sw := simnet.NewSwitch(c, 100*simtime.Microsecond, 28*simtime.Millisecond)
	return NewHost("host1", c, sw), c
}

func TestCreateWiresEverything(t *testing.T) {
	h, _ := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "10.0.0.5", Cores: 4})
	if ctr.Cgroup == nil || ctr.NS == nil || ctr.FS == nil || ctr.Stack == nil || ctr.Qdisc == nil {
		t.Fatal("missing component")
	}
	if len(ctr.Mounts.Mounts()) != 3 {
		t.Fatalf("mounts = %d", len(ctr.Mounts.Mounts()))
	}
	if h.Switch.Lookup("10.0.0.5") != ctr.Port {
		t.Fatal("container IP not learned by bridge")
	}
	if ctr.Cores != 4 {
		t.Fatal("cores not set")
	}
}

func TestCreateDefaultsCores(t *testing.T) {
	h, _ := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	if ctr.Cores != 1 {
		t.Fatalf("default cores = %d", ctr.Cores)
	}
}

func TestAddProcessJoinsCgroupWithLibs(t *testing.T) {
	h, _ := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 3)
	if p.ContainerID != "c1" {
		t.Fatal("container id not set")
	}
	if len(ctr.Cgroup.Members()) != 1 {
		t.Fatal("process not in cgroup")
	}
	if len(p.Mem.MappedFiles()) != 3 {
		t.Fatalf("mapped libs = %d", len(p.Mem.MappedFiles()))
	}
}

func TestTaskSchedulingConsumesCPU(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 0)
	steps := 0
	ctr.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		steps++
		return simtime.Millisecond, simtime.Millisecond
	})
	clock.RunUntil(simtime.Time(10*simtime.Millisecond + simtime.Microsecond))
	if steps < 10 || steps > 12 {
		t.Fatalf("steps = %d in 10ms at 1ms cadence", steps)
	}
	if ctr.Cgroup.CPUUsage() < 10*simtime.Millisecond {
		t.Fatalf("cpuacct = %v", ctr.Cgroup.CPUUsage())
	}
}

func TestFreezeStopsExecutionThawResumes(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 0)
	steps := 0
	ctr.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		steps++
		return simtime.Millisecond, simtime.Millisecond
	})
	clock.RunUntil(simtime.Time(5 * simtime.Millisecond))
	ctr.Freeze()
	at := steps
	clock.RunFor(20 * simtime.Millisecond)
	if steps != at {
		t.Fatalf("steps advanced while frozen: %d → %d", at, steps)
	}
	usage := ctr.Cgroup.CPUUsage()
	clock.RunFor(10 * simtime.Millisecond)
	if ctr.Cgroup.CPUUsage() != usage {
		t.Fatal("cpuacct advanced while frozen")
	}
	ctr.Thaw()
	clock.RunFor(10 * simtime.Millisecond)
	if steps <= at {
		t.Fatal("no steps after thaw")
	}
}

func TestBlockedTaskWaitsForWake(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 0)
	steps := 0
	task := ctr.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		steps++
		return 100 * simtime.Microsecond, Blocked
	})
	clock.RunFor(10 * simtime.Millisecond)
	if steps != 1 {
		t.Fatalf("blocked task ran %d times, want 1", steps)
	}
	if p.MainThread().State != simkernel.ThreadBlocked {
		t.Fatal("thread not marked blocked")
	}
	task.Wake()
	clock.RunFor(simtime.Millisecond)
	if steps != 2 {
		t.Fatalf("wake did not run task: steps=%d", steps)
	}
}

func TestWakeWhileFrozenDefersUntilThaw(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 0)
	steps := 0
	task := ctr.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		steps++
		return 10 * simtime.Microsecond, Blocked
	})
	clock.RunFor(simtime.Millisecond)
	ctr.Freeze()
	task.Wake()
	clock.RunFor(10 * simtime.Millisecond)
	if steps != 1 {
		t.Fatal("woken task ran while frozen")
	}
	ctr.Thaw()
	clock.RunFor(simtime.Millisecond)
	if steps != 2 {
		t.Fatalf("woken task did not run after thaw: %d", steps)
	}
}

func TestStopHaltsEverything(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 0)
	steps := 0
	ctr.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		steps++
		return simtime.Millisecond, simtime.Millisecond
	})
	clock.RunFor(3 * simtime.Millisecond)
	ctr.Stop()
	at := steps
	clock.RunFor(10 * simtime.Millisecond)
	if steps != at {
		t.Fatal("task ran after Stop")
	}
	if !ctr.Stopped() {
		t.Fatal("Stopped() = false")
	}
}

func TestRuntimeOverheadFoldedIn(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("app", 0)
	p.Mem.SetSoftDirtyTracking(true)
	vma := p.Mem.Mmap(100*simkernel.PageSize, simkernel.ProtRead|simkernel.ProtWrite, "", p.PID, "c1")
	_ = p.Mem.Touch(vma, 0, 100, 1) // pre-fault
	p.Mem.ConsumeTrackingOverhead()
	p.Mem.ClearSoftDirtyBits()

	ctr.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		_ = p.Mem.Touch(vma, 0, 10, 2)
		return 100 * simtime.Microsecond, Blocked
	})
	clock.RunFor(simtime.Millisecond)
	want := 10 * h.Kernel.Costs.SoftDirtyFault
	if ctr.RuntimeOverhead != want {
		t.Fatalf("runtime overhead = %v, want %v", ctr.RuntimeOverhead, want)
	}
	if ctr.CPUBusy != 100*simtime.Microsecond+want {
		t.Fatalf("CPUBusy = %v", ctr.CPUBusy)
	}
}

func TestKeepAliveAdvancesCpuacct(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	ctr.StartKeepAlive(30 * simtime.Millisecond)
	clock.RunFor(100 * simtime.Millisecond)
	u1 := ctr.Cgroup.CPUUsage()
	if u1 == 0 {
		t.Fatal("keep-alive did not charge CPU")
	}
	clock.RunFor(100 * simtime.Millisecond)
	if ctr.Cgroup.CPUUsage() <= u1 {
		t.Fatal("keep-alive stopped advancing cpuacct")
	}
}

func TestKeepAliveStopsWhenFrozen(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	ctr.StartKeepAlive(30 * simtime.Millisecond)
	clock.RunFor(100 * simtime.Millisecond)
	ctr.Freeze()
	u := ctr.Cgroup.CPUUsage()
	clock.RunFor(200 * simtime.Millisecond)
	if ctr.Cgroup.CPUUsage() != u {
		t.Fatal("cpuacct advanced while frozen (heartbeat would mask real failure)")
	}
}

func TestDisconnectBlocksTraffic(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "10.0.0.5"})
	// A client on the same switch.
	cp := h.Switch.Attach("client")
	client := simnet.NewStack(clock, "10.0.0.1", cp.Send)
	cp.SetReceiver(client.Receive)
	h.Switch.Learn("10.0.0.1", cp)

	accepted := 0
	ctr.Stack.Listen(80, func(*simnet.Socket) { accepted++ })
	ctr.Disconnect()
	client.Connect("10.0.0.5", 80, nil)
	clock.RunFor(500 * simtime.Millisecond)
	if accepted != 0 {
		t.Fatal("connection reached disconnected container")
	}
	ctr.Reconnect()
	clock.Run()
	if accepted != 1 {
		t.Fatalf("reconnect: accepted = %d (SYN retry should land)", accepted)
	}
}

func TestContainerNetworkThroughQdisc(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "10.0.0.5"})
	cp := h.Switch.Attach("client")
	client := simnet.NewStack(clock, "10.0.0.1", cp.Send)
	cp.SetReceiver(client.Receive)
	h.Switch.Learn("10.0.0.1", cp)

	var reply []byte
	ctr.Stack.Listen(7, func(s *simnet.Socket) {
		s.OnData = func(s *simnet.Socket) { s.Send(s.ReadAll()) }
	})
	client.Connect("10.0.0.5", 7, func(s *simnet.Socket) {
		s.OnData = func(s *simnet.Socket) { reply = append(reply, s.ReadAll()...) }
		s.Send([]byte("ping"))
	})
	clock.Run()
	if string(reply) != "ping" {
		t.Fatalf("echo through container qdisc = %q", reply)
	}
}

func TestEgressHeldWhileReplicating(t *testing.T) {
	h, clock := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "10.0.0.5"})
	cp := h.Switch.Attach("client")
	client := simnet.NewStack(clock, "10.0.0.1", cp.Send)
	cp.SetReceiver(client.Receive)
	h.Switch.Learn("10.0.0.1", cp)

	var reply []byte
	ctr.Stack.Listen(7, func(s *simnet.Socket) {
		s.OnData = func(s *simnet.Socket) { s.Send(s.ReadAll()) }
	})
	// Connect first (pass-through), then enable replication buffering.
	var cl *simnet.Socket
	client.Connect("10.0.0.5", 7, func(s *simnet.Socket) {
		cl = s
		s.OnData = func(s *simnet.Socket) { reply = append(reply, s.ReadAll()...) }
	})
	clock.Run()
	ctr.Qdisc.SetReplicating(true)
	cl.Send([]byte("held"))
	clock.RunFor(50 * simtime.Millisecond)
	if len(reply) != 0 {
		t.Fatal("output escaped the plug qdisc before release")
	}
	ctr.Qdisc.Rotate(0)
	ctr.Qdisc.Release(0)
	clock.RunFor(50 * simtime.Millisecond)
	if string(reply) != "held" {
		t.Fatalf("after release reply = %q", reply)
	}
}

func TestTotalResidentPages(t *testing.T) {
	h, _ := newTestHost()
	ctr := Create(h, Spec{ID: "c1", IP: "ip"})
	p := ctr.AddProcess("a", 0)
	v := p.Mem.Mmap(10*simkernel.PageSize, simkernel.ProtRead|simkernel.ProtWrite, "", p.PID, "c1")
	_ = p.Mem.Touch(v, 0, 5, 1)
	if ctr.TotalResidentPages() != 5 {
		t.Fatalf("resident = %d", ctr.TotalResidentPages())
	}
}
