// Package container is the simulated container runtime (the runC
// equivalent): it assembles processes, namespaces, a control group with
// cpuacct and freezer, a mount table, a root file system, and a network
// namespace whose veth attaches to the host's virtual bridge through a
// plug qdisc. It also provides the cooperative task scheduler that runs
// workload threads in virtual time, folding dirty-tracking overhead into
// their execution (the paper's "runtime overhead" component), and the
// keep-alive process NiLiCon uses to keep cpuacct advancing on idle
// containers (§IV).
package container

import (
	"fmt"

	"nilicon/internal/simdisk"
	"nilicon/internal/simfs"
	"nilicon/internal/simkernel"
	"nilicon/internal/simnet"
	"nilicon/internal/simtime"
)

// App is implemented by workloads whose user-space state must survive
// failover. SnapshotState must return a deep copy; RestoreState
// reinitializes the application from such a copy. This models the
// application's memory contents at a semantic level, while the
// simkernel page machinery models their footprint and dirtying.
type App interface {
	SnapshotState() any
	RestoreState(snapshot any)
}

// Host is one physical machine: a kernel, a disk, and a NIC on the LAN
// switch.
type Host struct {
	Name   string
	Clock  *simtime.Clock
	Kernel *simkernel.Kernel
	Switch *simnet.Switch
	Disk   *simdisk.Disk
}

// NewHost creates a host attached to the given switch.
func NewHost(name string, clock *simtime.Clock, sw *simnet.Switch) *Host {
	return &Host{
		Name:   name,
		Clock:  clock,
		Kernel: simkernel.NewKernel(clock),
		Switch: sw,
		Disk:   simdisk.NewDisk(name + "-disk"),
	}
}

// StepFunc is one scheduling quantum of a workload thread. It returns
// the CPU time consumed and the delay until the thread wants to run
// again. A negative next means the thread blocks until Wake is called.
type StepFunc func() (busy, next simtime.Duration)

// Blocked is the next value a StepFunc returns to block its task.
const Blocked = simtime.Duration(-1)

// Task binds a kernel thread to a workload step function.
type Task struct {
	Thread *simkernel.Thread
	Step   StepFunc

	ctr     *Container
	blocked bool
	stopped bool
	pending *simtime.Event
	// wake is the reusable run callback: tasks reschedule on every step,
	// so allocating a fresh closure per wake is pure event-loop garbage.
	wake func()
	// readyAt is the earliest time the task may run again: a step that
	// consumed CPU occupies its thread for that long even if it then
	// blocks (a Wake cannot bypass the busy time).
	readyAt simtime.Time
	// frozenRemaining preserves the time left until the task's next run
	// when the freezer pauses the container; thaw resumes the countdown
	// rather than restarting the task immediately.
	frozenRemaining simtime.Duration
}

// Container is one running container.
type Container struct {
	ID    string
	Host  *Host
	IP    simnet.Addr
	Cores int

	Cgroup  *simkernel.Cgroup
	NS      *simkernel.NamespaceSet
	Mounts  *simkernel.MountTable
	Devices []simkernel.DeviceFile
	FS      *simfs.FS
	Stack   *simnet.Stack
	Qdisc   *simnet.PlugQdisc
	Port    *simnet.Port

	Procs []*simkernel.Process
	Tasks []*Task

	// App holds the workload's user-space state (may be nil for
	// workloads that keep all state in simulated pages/files).
	App App

	frozen   bool
	frozenAt simtime.Time
	stopped  bool

	// OnTaskStep, when set, observes every executed scheduling quantum
	// (the task's thread TID). The record/replay recorder folds the
	// sequence into a per-segment scheduling digest so failover replay
	// can detect divergence in scheduling decisions, not just in output.
	OnTaskStep func(tid int)

	// RuntimeOverhead accumulates dirty-tracking cost folded into task
	// execution since creation.
	RuntimeOverhead simtime.Duration
	// CPUBusy accumulates task CPU time (excluding frozen periods).
	CPUBusy simtime.Duration
}

// Spec configures container creation.
type Spec struct {
	ID    string
	IP    simnet.Addr
	Cores int
	// Store is the block layer for the root file system (a Disk or the
	// primary end of a DRBD pair). Defaults to the host disk.
	Store simfs.BlockStore
}

// Create builds a container on the host: fresh namespaces, a cgroup, a
// default mount table, a root FS, and a network namespace attached to
// the host switch through a plug qdisc.
func Create(h *Host, spec Spec) *Container {
	if spec.Cores <= 0 {
		spec.Cores = 1
	}
	c := &Container{ID: spec.ID, Host: h, IP: spec.IP, Cores: spec.Cores}
	c.Cgroup = h.Kernel.NewCgroup("/sys/fs/cgroup/" + spec.ID)
	c.NS = h.Kernel.NewNamespaceSet(0, spec.ID)
	h.Kernel.SetNamespaceExtra(c.NS.UTS, 0, spec.ID, "hostname", spec.ID)
	c.Mounts = h.Kernel.NewMountTable()
	c.Mounts.Mount(simkernel.Mount{Source: "overlay", Target: "/", FSType: "overlay"}, 0, spec.ID)
	c.Mounts.Mount(simkernel.Mount{Source: "proc", Target: "/proc", FSType: "proc"}, 0, spec.ID)
	c.Mounts.Mount(simkernel.Mount{Source: "tmpfs", Target: "/tmp", FSType: "tmpfs"}, 0, spec.ID)
	c.Devices = []simkernel.DeviceFile{
		{Path: "/dev/null", Major: 1, Minor: 3},
		{Path: "/dev/zero", Major: 1, Minor: 5},
		{Path: "/dev/urandom", Major: 1, Minor: 9},
	}
	store := spec.Store
	if store == nil {
		store = h.Disk
	}
	c.FS = simfs.New(h.Clock, store)
	c.FS.Kernel = h.Kernel

	c.Port = h.Switch.AttachOn(spec.ID+"-veth", h.Clock)
	c.Stack = simnet.NewStack(h.Clock, spec.IP, nil)
	c.Stack.Kernel = h.Kernel
	c.Qdisc = simnet.NewPlugQdisc(c.Port.Send, c.Stack.Receive)
	c.Stack.SetOutput(c.Qdisc.Egress)
	c.Port.SetReceiver(c.Qdisc.Ingress)
	h.Switch.Learn(spec.IP, c.Port)
	return c
}

// AddProcess creates a process inside the container and attaches it to
// the cgroup. Typical user-space mappings (a couple of dynamic
// libraries) are installed so checkpointing has realistic mapped files.
func (c *Container) AddProcess(name string, libs int) *simkernel.Process {
	p := c.Host.Kernel.NewProcess(name, c.ID)
	c.Cgroup.AddProcess(p)
	for i := 0; i < libs; i++ {
		p.Mem.Mmap(64*simkernel.PageSize, simkernel.ProtRead|simkernel.ProtExec,
			fmt.Sprintf("/usr/lib/%s-lib%d.so", name, i), p.PID, c.ID)
	}
	c.Procs = append(c.Procs, p)
	return p
}

// AddTask registers a step function on a thread and starts scheduling
// it immediately.
func (c *Container) AddTask(th *simkernel.Thread, step StepFunc) *Task {
	t := &Task{Thread: th, Step: step, ctr: c}
	t.wake = func() { c.runTask(t) }
	c.Tasks = append(c.Tasks, t)
	c.scheduleTask(t, 0)
	return t
}

func (c *Container) scheduleTask(t *Task, d simtime.Duration) {
	t.pending = c.Host.Clock.Schedule(d, t.wake)
}

func (c *Container) runTask(t *Task) {
	if c.frozen || c.stopped || t.stopped || t.blocked {
		return
	}
	if t.Thread.State != simkernel.ThreadRunning {
		return
	}
	if c.OnTaskStep != nil {
		c.OnTaskStep(t.Thread.TID)
	}
	busy, next := t.Step()
	// Fold the runtime dirty-tracking overhead into execution time.
	overhead := t.Thread.Proc.Mem.ConsumeTrackingOverhead()
	c.RuntimeOverhead += overhead
	total := busy + overhead
	c.CPUBusy += total
	c.Cgroup.ChargeCPU(total)
	t.readyAt = c.Host.Clock.Now().Add(total)
	if next < 0 {
		t.blocked = true
		t.Thread.State = simkernel.ThreadBlocked
		return
	}
	if next < total {
		next = total
	}
	c.scheduleTask(t, next)
}

// Wake unblocks a task (e.g. data arrived on its socket).
func (t *Task) Wake() {
	if !t.blocked || t.stopped {
		return
	}
	t.blocked = false
	if t.Thread.State == simkernel.ThreadBlocked {
		t.Thread.State = simkernel.ThreadRunning
	}
	if !t.ctr.frozen && !t.ctr.stopped {
		// The thread stays occupied until its last step's CPU time has
		// elapsed; a wake cannot cut that short.
		delay := t.readyAt.Sub(t.ctr.Host.Clock.Now())
		if delay < 0 {
			delay = 0
		}
		t.ctr.scheduleTask(t, delay)
	}
}

// Stop permanently deschedules the task.
func (t *Task) Stop() {
	t.stopped = true
	if t.pending != nil {
		t.pending.Cancel()
	}
}

// Freeze pauses the container via the cgroup freezer and returns the
// settle time (§II-B). Each task's pending quantum is suspended: the
// time remaining until its next step is preserved and resumes counting
// at thaw (frozen time does not execute work).
func (c *Container) Freeze() simtime.Duration {
	settle := c.Cgroup.Freeze()
	c.frozen = true
	now := c.Host.Clock.Now()
	c.frozenAt = now
	for _, t := range c.Tasks {
		if t.stopped || t.blocked || t.pending == nil || t.pending.Canceled() {
			continue
		}
		t.frozenRemaining = t.pending.When().Sub(now)
		if t.frozenRemaining < 0 {
			t.frozenRemaining = 0
		}
		t.pending.Cancel()
	}
	return settle
}

// Thaw resumes execution: all runnable tasks are rescheduled and busy
// tails shift by the frozen duration (no CPU ran while frozen).
func (c *Container) Thaw() {
	c.Cgroup.Thaw()
	c.frozen = false
	frozenFor := c.Host.Clock.Now().Sub(c.frozenAt)
	for _, t := range c.Tasks {
		if t.readyAt > c.frozenAt {
			t.readyAt = t.readyAt.Add(frozenFor)
		}
	}
	for _, t := range c.Tasks {
		if !t.blocked && !t.stopped {
			// A task woken while frozen had its thread state snapshotted
			// as Blocked by the freezer; the wake takes effect now.
			if t.Thread.State == simkernel.ThreadBlocked {
				t.Thread.State = simkernel.ThreadRunning
			}
			if t.pending != nil {
				t.pending.Cancel()
			}
			// Resume the suspended countdown where the freeze stopped it.
			c.scheduleTask(t, t.frozenRemaining)
			t.frozenRemaining = 0
		}
	}
}

// Frozen reports the freezer state.
func (c *Container) Frozen() bool { return c.frozen }

// Stop halts the container permanently (fail-stop or teardown).
func (c *Container) Stop() {
	c.stopped = true
	for _, t := range c.Tasks {
		t.Stop()
	}
}

// Stopped reports whether the container has been stopped.
func (c *Container) Stopped() bool { return c.stopped }

// Disconnect detaches the container's veth from the bridge (drops all
// ingress/egress at the port).
func (c *Container) Disconnect() { c.Port.SetEnabled(false) }

// Reconnect reattaches the veth.
func (c *Container) Reconnect() { c.Port.SetEnabled(true) }

// StartKeepAlive installs the keep-alive process (§IV): it wakes every
// interval and executes ~1000 instructions so that cpuacct.usage always
// advances while the container is healthy, preventing false alarms from
// the heartbeat detector when the container is idle.
func (c *Container) StartKeepAlive(interval simtime.Duration) *Task {
	p := c.AddProcess("keepalive", 1)
	const instrCost = 500 * simtime.Nanosecond // ~1000 instructions
	return c.AddTask(p.MainThread(), func() (simtime.Duration, simtime.Duration) {
		return instrCost, interval
	})
}

// TotalResidentPages sums resident pages across the container's
// processes.
func (c *Container) TotalResidentPages() int {
	n := 0
	for _, p := range c.Procs {
		n += p.Mem.ResidentPages()
	}
	return n
}

func (c *Container) String() string {
	return fmt.Sprintf("container{%s on %s, procs=%d, frozen=%v}", c.ID, c.Host.Name, len(c.Procs), c.frozen)
}
