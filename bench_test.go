// Package nilicon's top-level benchmarks regenerate the paper's tables
// and figures (DESIGN.md §3). Each benchmark runs the corresponding
// harness experiment once per iteration and reports the headline metric
// via b.ReportMetric, so `go test -bench=.` doubles as the experiment
// runner. Measurement windows are kept short; use cmd/niliconctl for
// full-length runs.
package nilicon_test

import (
	"fmt"

	"testing"

	"nilicon/internal/core"
	"nilicon/internal/harness"
	"nilicon/internal/simtime"
	"nilicon/internal/workloads"
)

func quickRC() harness.RunConfig {
	return harness.RunConfig{
		Warmup:  500 * simtime.Millisecond,
		Measure: 1500 * simtime.Millisecond,
		Seed:    1,
	}
}

// BenchmarkTable1OptimizationLadder regenerates Table I: streamcluster's
// overhead as each §V optimization lands (paper: 1940% → 31%).
func BenchmarkTable1OptimizationLadder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunTable1(quickRC())
		b.ReportMetric(rows[0].Overhead*100, "basic-%ovh")
		b.ReportMetric(rows[len(rows)-1].Overhead*100, "opt-%ovh")
	}
}

// BenchmarkTable2RecoveryLatency regenerates Table II: the recovery
// latency breakdown for Net and Redis (paper: 307 ms and 372 ms).
func BenchmarkTable2RecoveryLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunTable2(quickRC())
		b.ReportMetric(float64(rows[0].Total)/1e6, "net-ms")
		b.ReportMetric(float64(rows[1].Total)/1e6, "redis-ms")
	}
}

// BenchmarkFigure3Overhead regenerates Figure 3 (and, from the same
// runs, Tables III-V): overhead of MC and NiLiCon across the seven
// benchmarks.
func BenchmarkFigure3Overhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunFigure3(quickRC())
		var mcSum, nlSum float64
		for _, r := range rows {
			mcSum += r.MCOverhead
			nlSum += r.NLOverhead
		}
		b.ReportMetric(mcSum/float64(len(rows))*100, "mc-mean-%ovh")
		b.ReportMetric(nlSum/float64(len(rows))*100, "nilicon-mean-%ovh")
	}
}

// BenchmarkTable3StopTime reports the per-benchmark NiLiCon stop times
// (paper Table III: 5.1-38.2 ms) for the two extremes.
func BenchmarkTable3StopTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		swap := harness.RunBatch(workloads.Swaptions, harness.NiLiCon, quickRC())
		node := harness.RunServer(workloads.Node, harness.NiLiCon, quickRC())
		b.ReportMetric(swap.StopMean*1000, "swaptions-stop-ms")
		b.ReportMetric(node.StopMean*1000, "node-stop-ms")
	}
}

// BenchmarkTable4Percentiles reports Table IV's stop-time spread for
// streamcluster (paper: 6.3/6.4/13.1 ms at p10/50/90).
func BenchmarkTable4Percentiles(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := harness.RunBatch(workloads.Streamcluster, harness.NiLiCon, quickRC())
		b.ReportMetric(res.StopP10*1000, "p10-ms")
		b.ReportMetric(res.StopP50*1000, "p50-ms")
		b.ReportMetric(res.StopP90*1000, "p90-ms")
	}
}

// BenchmarkTable5BackupCPU reports backup-host core utilization under
// NiLiCon (paper Table V: 0.07-0.40 of a core).
func BenchmarkTable5BackupCPU(b *testing.B) {
	for i := 0; i < b.N; i++ {
		redis := harness.RunServer(workloads.Redis, harness.NiLiCon, quickRC())
		node := harness.RunServer(workloads.Node, harness.NiLiCon, quickRC())
		b.ReportMetric(redis.BackupUtil, "redis-backup-cores")
		b.ReportMetric(node.BackupUtil, "node-backup-cores")
	}
}

// BenchmarkTable6Latency reports single-client response latency
// inflation (paper Table VI, e.g. Redis 3.1 ms → 36.9 ms).
func BenchmarkTable6Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunTable6(quickRC())
		b.ReportMetric(float64(rows[0].Stock)/1e6, "redis-stock-ms")
		b.ReportMetric(float64(rows[0].NiLiCon)/1e6, "redis-nilicon-ms")
	}
}

// BenchmarkValidation runs the §VII-A fault-injection experiment (one
// short run per benchmark; the paper runs 50×60 s with 100% recovery).
func BenchmarkValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, _ := harness.RunValidation([]string{"redis", "diskstress", "netstress"}, 1, 6*simtime.Second, int64(i)+1)
		passed := 0
		for _, r := range results {
			if r.Passed {
				passed++
			}
		}
		b.ReportMetric(float64(passed)/float64(len(results))*100, "recovery-%")
	}
}

// BenchmarkScaleThreads regenerates the streamcluster thread sweep
// (paper: 23% → 52% from 1 to 32 threads).
func BenchmarkScaleThreads(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunScaleThreads([]int{1, 8, 32}, quickRC())
		b.ReportMetric(rows[0].Overhead*100, "1thr-%ovh")
		b.ReportMetric(rows[len(rows)-1].Overhead*100, "32thr-%ovh")
	}
}

// BenchmarkScaleClients regenerates the lighttpd client sweep (paper:
// ≈34% at ≤32 clients to 45% at 128, socket collection 1.2→13 ms).
func BenchmarkScaleClients(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunScaleClients([]int{2, 128}, quickRC())
		b.ReportMetric(rows[0].Overhead*100, "2cl-%ovh")
		b.ReportMetric(rows[1].Overhead*100, "128cl-%ovh")
	}
}

// BenchmarkScaleProcs regenerates the lighttpd process sweep (paper:
// 23% → 63% from 1 to 8 processes).
func BenchmarkScaleProcs(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _ := harness.RunScaleProcs([]int{1, 8}, quickRC())
		b.ReportMetric(rows[0].Overhead*100, "1proc-%ovh")
		b.ReportMetric(rows[1].Overhead*100, "8proc-%ovh")
	}
}

// BenchmarkPipelinedVsStopAndCopy compares the epoch pipeline's transfer
// modes on streamcluster: strict stop-and-copy (container frozen until
// the state reaches the backup) against the overlapped pipelined
// transfer (CoW pages stream while the next epoch executes). Wall-clock
// time per iteration is the benchmark metric; the virtual-time overhead
// each mode imposes on the workload is reported alongside.
func BenchmarkPipelinedVsStopAndCopy(b *testing.B) {
	stock := harness.RunBatch(workloads.Streamcluster, harness.Stock, quickRC())
	run := func(b *testing.B, opts core.OptSet) {
		for i := 0; i < b.N; i++ {
			rc := quickRC()
			rc.Opts = &opts
			res := harness.RunBatch(workloads.Streamcluster, harness.NiLiCon, rc)
			b.ReportMetric(harness.Overhead(stock, res)*100, "%ovh")
			b.ReportMetric(res.StopMean*1000, "stop-ms")
		}
	}
	b.Run("StopAndCopy", func(b *testing.B) {
		opts := core.AllOpts()
		opts.StagingBuffer = false
		run(b, opts)
	})
	b.Run("Pipelined", func(b *testing.B) {
		run(b, core.PipelinedOpts())
	})
}

// BenchmarkDeltaVsFullTransfer compares the replication stream with and
// without the delta-compressed wire format (DESIGN.md §8) on the
// memory-heavy streamcluster workload: steady-state bytes on the wire
// per epoch and the p99 output-commit latency. The delta rows must show
// a large wire-byte drop with no commit-tail regression.
func BenchmarkDeltaVsFullTransfer(b *testing.B) {
	run := func(b *testing.B, opts core.OptSet) {
		for i := 0; i < b.N; i++ {
			rc := quickRC()
			rc.Opts = &opts
			res := harness.RunBatch(workloads.Streamcluster, harness.NiLiCon, rc)
			b.ReportMetric(res.WireMean, "wire-B/epoch")
			b.ReportMetric(res.CommitP99*1000, "commit-p99-ms")
		}
	}
	b.Run("Full", func(b *testing.B) {
		run(b, core.AllOpts())
	})
	b.Run("Delta", func(b *testing.B) {
		opts := core.AllOpts()
		opts.DeltaPages = true
		run(b, opts)
	})
	b.Run("DeltaDedup", func(b *testing.B) {
		run(b, core.DeltaOpts())
	})
}

// BenchmarkShardedVsSerial races the two simulation engines on the
// BENCH_5 fleet (DESIGN.md §11): 10 hosts, 32 replicating pairs, each
// pair a small thread pool holding a deep bank of parked connection
// timers. The sharded rows must hold the ≥2× events/sec advantage
// recorded in BENCH_5.json; allocations are reported because slot
// recycling inside the wheels is what keeps the sharded engine's
// per-event cost flat.
func BenchmarkShardedVsSerial(b *testing.B) {
	b.Run("Serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ev, wall := harness.Bench5SerialRun(1)
			b.ReportMetric(float64(ev)/wall.Seconds(), "events/sec")
		}
	})
	for _, lanes := range []int{1, 4} {
		b.Run(fmt.Sprintf("ShardedLanes%d", lanes), func(b *testing.B) {
			lanes := lanes
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				ev, wall := harness.Bench5ShardedRun(1, lanes)
				b.ReportMetric(float64(ev)/wall.Seconds(), "events/sec")
			}
		})
	}
}
