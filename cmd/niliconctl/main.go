// Command niliconctl runs the NiLiCon reproduction experiments and
// prints the paper's tables and figures.
//
// Usage:
//
//	niliconctl <experiment> [flags]
//
// Experiments:
//
//	table1         Optimization ladder (streamcluster)
//	table2         Recovery latency breakdown (Net, Redis)
//	fig3           Overhead comparison MC vs NiLiCon (also prints
//	               Tables III, IV and V from the same runs)
//	table6         Single-client response latency
//	validate       §VII-A fault-injection validation
//	pipeline       Epoch-pipeline transfer-mode ablation (streamcluster)
//	bench          BENCH_3.json: the optimization ladder plus the §8
//	               delta-compression rows, as JSON on stdout
//	chaos          Seeded deterministic fault campaign with invariant
//	               oracles (-sweep for the full matrix, including the
//	               fleet scenarios; -replicas N>2 runs the f+1 chain
//	               campaign with witness-quorum promotion instead)
//	fleet          Fleet campaign: -pairs containers over -hosts workers
//	               (+ -spares), -kills concurrent host failures, all
//	               oracles verified (-smoke for the reduced CI shape;
//	               -replicas N>2 places f+1 chains zone-anti-affine over
//	               -zones failure domains and kills a whole zone)
//	fleetbench     BENCH_4.json: fleet scaling sweep, as JSON on stdout
//	bench5         BENCH_5.json: simulation-engine event throughput,
//	               serial clock vs sharded event wheels, as JSON on
//	               stdout
//	bench6         BENCH_6.json: externally-visible response latency
//	               across output-commit disciplines (stop-and-copy,
//	               pipelined, lease, record/replay), as JSON on stdout
//	bench7         BENCH_7.json: parallel windowed throughput on a
//	               64-host / 256-pair fleet, ladder lanes 1/2/4/8 vs
//	               windowed lanes x workers grid, as JSON on stdout
//	traffic        Trace tooling (DESIGN.md §14): -synth <profile> writes
//	               a synthesized JSONL trace to stdout, -capture <bench>
//	               records a uniform client run into a trace, -replay
//	               reads a trace from stdin and replays it through a
//	               chaos campaign with windowed SLO judging (-smoke for
//	               the clean fault-free CI shape)
//	bench8         BENCH_8.json: client-observed SLO ladder — uniform vs
//	               zipf vs burst traces through a mid-run failover, as
//	               JSON on stdout
//	bench9         BENCH_9.json: f+1 replication ladder — failover time
//	               and fan-out wire bytes at chain widths 2/3/4, single
//	               host kill vs whole-zone kill, as JSON on stdout
//	scale-threads  Streamcluster 1..32 threads
//	scale-clients  Lighttpd 2..128 clients
//	scale-procs    Lighttpd 1..8 processes
//	all            Everything above
//
// The chaos and fleet campaigns run with output-commit lease arbitration
// on; -degrade selects the lease degradation policy (strict keeps a
// primary that lost its backup fenced, availability lets it declare the
// pair unprotected and serve without acks until re-protection).
//
// The -pipeline flag enables the overlapped (pipelined) state transfer
// on experiments that run a replicator (timeline, validate, fig3, ...).
// The -delta flag enables the delta-compressed replication stream
// (DeltaPages + BackupPageDedup, DESIGN.md §8) the same way. The -opts
// replay option set (chaos) runs HyCoR-mode record/replay (DESIGN.md
// §12). The -j flag runs sweep-style experiments (chaos -sweep, table1,
// pipeline, bench, fleetbench) on a worker pool; every seeded run stays
// single-threaded and results are collected in a fixed order, so output
// is byte-identical for any -j value.
//
// All experiments run in virtual time and are fully deterministic for a
// given -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"nilicon/internal/chaos"
	"nilicon/internal/core"
	"nilicon/internal/harness"
	"nilicon/internal/report"
	"nilicon/internal/simtime"
	"nilicon/internal/traffic"
	"nilicon/internal/workloads"
)

func main() {
	os.Exit(newApp(os.Stdout, os.Stderr).run(os.Args[1:]))
}

// app is one niliconctl invocation: its flag set, parsed values and
// output streams. Building a fresh app per invocation (instead of
// package-level flag globals) keeps runs independently testable and
// lets parse and validation errors return instead of os.Exit-ing from
// inside the flag package.
type app struct {
	fs     *flag.FlagSet
	stdout io.Writer
	stderr io.Writer
	stdin  io.Reader

	seed     *int64
	warmup   *time.Duration
	measure  *time.Duration
	runs     *int
	bench    *string
	runLen   *time.Duration
	pipeline *bool
	delta    *bool
	jobs     *int
	seeds    *int
	optsName *string
	sweep    *bool
	chaosDur *time.Duration
	pairs    *int
	hosts    *int
	spares   *int
	kills    *int
	replicas *int
	zones    *int
	smoke    *bool
	degrade  *string
	shards   *int
	workers  *int
	synth    *string
	capture  *string
	replay   *bool
	traceF   *string
	tClients *int
	tRate    *float64
	tDur     *time.Duration
	cpuprof  *string
	memprof  *string

	degradePol core.DegradePolicy
	cpuprofF   *os.File
}

func newApp(stdout, stderr io.Writer) *app {
	a := &app{stdout: stdout, stderr: stderr, stdin: os.Stdin}
	fs := flag.NewFlagSet("niliconctl", flag.ContinueOnError)
	fs.SetOutput(stderr)
	a.fs = fs
	a.seed = fs.Int64("seed", 1, "deterministic simulation seed")
	a.warmup = fs.Duration("warmup", time.Second, "virtual warmup before measurement")
	a.measure = fs.Duration("measure", 3*time.Second, "virtual measurement window")
	a.runs = fs.Int("runs", 5, "validation runs per benchmark")
	a.bench = fs.String("bench", "redis", "benchmark for the timeline command")
	a.runLen = fs.Duration("runlen", 20*time.Second, "validation run length (paper: 60s, 50 runs)")
	a.pipeline = fs.Bool("pipeline", false, "enable the overlapped (pipelined) state transfer")
	a.delta = fs.Bool("delta", false, "enable the delta-compressed replication stream (XOR page deltas, zero elision, backup page dedup)")
	a.jobs = fs.Int("j", 1, "worker-pool width for sweep experiments (output is identical for any value)")
	a.seeds = fs.Int("seeds", 20, "chaos: campaigns per matrix entry in sweep mode")
	a.optsName = fs.String("opts", "all", "chaos: option set (basic|stop-and-copy|all|pipelined|delta|replay)")
	a.sweep = fs.Bool("sweep", false, "chaos: run the full matrix sweep instead of one campaign")
	a.chaosDur = fs.Duration("chaos-duration", 1500*time.Millisecond, "chaos/fleet: fault-injection window (virtual)")
	a.pairs = fs.Int("pairs", 8, "fleet: protected container pairs")
	a.hosts = fs.Int("hosts", 4, "fleet: worker hosts in the pool")
	a.spares = fs.Int("spares", 2, "fleet: spare hosts for re-protection")
	a.kills = fs.Int("kills", 2, "fleet: concurrent host failures to inject")
	a.replicas = fs.Int("replicas", 2, "chaos/fleet: chain width, primary + N-1 backup replicas (>2 runs the f+1 chain machinery; fleet then kills a whole zone)")
	a.zones = fs.Int("zones", 0, "fleet: failure domains for zone-anti-affine chain placement (0 = auto: max(replicas, 1))")
	a.smoke = fs.Bool("smoke", false, "fleet: reduced CI shape (4 pairs, 4 hosts, 1 kill, short window)")
	a.degrade = fs.String("degrade", "strict", "chaos/fleet: lease degradation policy (strict|availability)")
	a.shards = fs.Int("shards", 0, "chaos/fleet: simulation engine (0 = serial clock; N>=1 = sharded event wheels with N lanes, trace-identical for any N)")
	a.workers = fs.Int("workers", 0, "chaos/fleet: window-drain goroutines for the sharded engine (0 = ladder mode; N>=1 = conservative windows, trace-identical for any N)")
	a.synth = fs.String("synth", "", "traffic: synthesize a trace from this profile (uniform|zipf|burst|slowclient) to stdout")
	a.capture = fs.String("capture", "", "traffic: run this server benchmark's uniform clients under capture and write the recorded trace to stdout")
	a.replay = fs.Bool("replay", false, "traffic: read a JSONL trace from stdin and replay it through a chaos campaign with SLO judging")
	a.traceF = fs.String("traffic", "", "chaos: replay this JSONL trace file as the campaign's client workload (replaces the fixed-interval writer)")
	a.tClients = fs.Int("clients", 8, "traffic: client connections for -synth/-capture")
	a.tRate = fs.Float64("rate", 600, "traffic -synth: mean arrival rate (req/s)")
	a.tDur = fs.Duration("traffic-duration", 2500*time.Millisecond, "traffic: trace length for -synth, run length for -capture (virtual)")
	a.cpuprof = fs.String("cpuprofile", "", "write a CPU profile to this file (pprof format)")
	a.memprof = fs.String("memprofile", "", "write a heap profile to this file at exit (pprof format)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: niliconctl <table1|table2|fig3|table6|validate|pipeline|bench|chaos|fleet|fleetbench|bench5|bench6|bench7|traffic|bench8|bench9|scale-threads|scale-clients|scale-procs|report|timeline|all> [flags]\n")
		fs.PrintDefaults()
	}
	return a
}

// run parses and validates one invocation and dispatches it. It returns
// the process exit code: 0 on success, 2 for usage errors (unknown
// experiment, unparseable or out-of-range flag values), 1 for
// experiment failures.
func (a *app) run(args []string) int {
	if len(args) < 1 {
		a.fs.Usage()
		return 2
	}
	cmd := args[0]
	if !knownCommand(cmd) {
		fmt.Fprintf(a.stderr, "niliconctl: unknown experiment %q\n", cmd)
		a.fs.Usage()
		return 2
	}
	if err := a.fs.Parse(args[1:]); err != nil {
		// The flag package already printed the one-line error (and usage)
		// to a.stderr.
		return 2
	}
	if err := a.validate(); err != nil {
		fmt.Fprintf(a.stderr, "niliconctl: %v\n", err)
		return 2
	}

	harness.Jobs = *a.jobs
	harness.Verbose = func(format string, args ...any) {
		fmt.Fprintf(a.stderr, format+"\n", args...)
	}

	if err := a.startProfiles(); err != nil {
		fmt.Fprintf(a.stderr, "niliconctl: %v\n", err)
		return 2
	}
	defer a.stopProfiles()

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "fig3", "table6", "validate", "pipeline", "scale-threads", "scale-clients", "scale-procs"} {
			fmt.Fprintf(a.stdout, "== %s ==\n", name)
			if err := a.runCommand(name); err != nil {
				fmt.Fprintf(a.stderr, "niliconctl %s: %v\n", name, err)
				return 1
			}
		}
		return 0
	}
	if err := a.runCommand(cmd); err != nil {
		fmt.Fprintf(a.stderr, "niliconctl %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

// startProfiles begins CPU profiling and arms the heap snapshot when
// the -cpuprofile/-memprofile flags are set. Meant for the bench*
// subcommands (profile the hot simulation paths), but valid on any
// experiment.
func (a *app) startProfiles() error {
	if *a.cpuprof != "" {
		f, err := os.Create(*a.cpuprof)
		if err != nil {
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %v", err)
		}
		a.cpuprofF = f
	}
	return nil
}

func (a *app) stopProfiles() {
	if a.cpuprofF != nil {
		pprof.StopCPUProfile()
		a.cpuprofF.Close()
		a.cpuprofF = nil
	}
	if *a.memprof != "" {
		f, err := os.Create(*a.memprof)
		if err != nil {
			fmt.Fprintf(a.stderr, "niliconctl: -memprofile: %v\n", err)
			return
		}
		defer f.Close()
		runtime.GC() // settle allocations so the snapshot reflects live heap
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(a.stderr, "niliconctl: -memprofile: %v\n", err)
		}
	}
}

// validate rejects out-of-range or malformed flag values with one-line
// errors before any experiment starts.
func (a *app) validate() error {
	if *a.jobs < 1 {
		return fmt.Errorf("-j must be >= 1 (got %d)", *a.jobs)
	}
	if *a.shards < 0 {
		return fmt.Errorf("-shards must be >= 0 (got %d)", *a.shards)
	}
	if *a.workers < 0 {
		return fmt.Errorf("-workers must be >= 0 (got %d)", *a.workers)
	}
	if *a.workers > 0 && *a.shards == 0 {
		return fmt.Errorf("-workers requires the sharded engine (-shards >= 1)")
	}
	if *a.seeds < 1 {
		return fmt.Errorf("-seeds must be >= 1 (got %d)", *a.seeds)
	}
	if *a.runs < 1 {
		return fmt.Errorf("-runs must be >= 1 (got %d)", *a.runs)
	}
	if *a.replicas < 2 {
		return fmt.Errorf("-replicas must be >= 2 (got %d)", *a.replicas)
	}
	if *a.zones < 0 {
		return fmt.Errorf("-zones must be >= 0 (got %d)", *a.zones)
	}
	pol, err := core.ParseDegradePolicy(*a.degrade)
	if err != nil {
		return fmt.Errorf("-degrade: %v", err)
	}
	a.degradePol = pol
	return nil
}

var commands = []string{
	"table1", "table2", "fig3", "table6", "validate", "pipeline", "bench",
	"chaos", "fleet", "fleetbench", "bench5", "bench6", "bench7",
	"traffic", "bench8", "bench9",
	"scale-threads", "scale-clients", "scale-procs", "report", "timeline", "all",
}

func knownCommand(name string) bool {
	for _, c := range commands {
		if c == name {
			return true
		}
	}
	return false
}

// runConfig assembles the shared RunConfig from the parsed flags.
func (a *app) runConfig() harness.RunConfig {
	return harness.RunConfig{Seed: *a.seed, Warmup: *a.warmup, Measure: *a.measure, Pipelined: *a.pipeline, Delta: *a.delta}
}

// runCommand dispatches one experiment; every branch is a run helper
// returning an error so exit handling stays in one place.
func (a *app) runCommand(name string) error {
	switch name {
	case "table1":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunTable1(rc); return tb })
	case "table2":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunTable2(rc); return tb })
	case "fig3":
		return a.runFig3()
	case "table6":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunTable6(rc); return tb })
	case "validate":
		return a.runValidate()
	case "pipeline":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunPipelineAblation(rc); return tb })
	case "bench":
		return a.runBench()
	case "chaos":
		return a.runChaos()
	case "fleet":
		return a.runFleet()
	case "fleetbench":
		return a.runFleetBench()
	case "bench5":
		return a.runBench5()
	case "bench6":
		return a.runBench6()
	case "bench7":
		return a.runBench7()
	case "traffic":
		return a.runTraffic()
	case "bench8":
		return a.runBench8()
	case "bench9":
		return a.runBench9()
	case "scale-threads":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunScaleThreads(nil, rc); return tb })
	case "scale-clients":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunScaleClients(nil, rc); return tb })
	case "scale-procs":
		return a.runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunScaleProcs(nil, rc); return tb })
	case "report":
		fmt.Fprintln(a.stdout, report.Build(a.runConfig()))
		return nil
	case "timeline":
		return a.runTimeline()
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}

// runTable covers the experiments whose whole output is one table.
func (a *app) runTable(f func(harness.RunConfig) fmt.Stringer) error {
	fmt.Fprintln(a.stdout, f(a.runConfig()))
	return nil
}

func (a *app) runFig3() error {
	rows, tb := harness.RunFigure3(a.runConfig())
	fmt.Fprintln(a.stdout, harness.RenderFigure3(rows))
	fmt.Fprintln(a.stdout, tb)
	fmt.Fprintln(a.stdout, harness.Table3(rows))
	fmt.Fprintln(a.stdout, harness.Table4(rows))
	fmt.Fprintln(a.stdout, harness.Table5(rows))
	return nil
}

func (a *app) runValidate() error {
	_, tb := harness.RunValidationOpts(nil, *a.runs, simtime.Duration(*a.runLen), *a.seed, *a.pipeline)
	fmt.Fprintln(a.stdout, tb)
	return nil
}

func (a *app) runBench() error {
	out, err := harness.RunBench3(a.runConfig()).JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runChaos() error {
	if *a.sweep {
		results, tb := harness.RunChaosSweepSharded(*a.seeds, *a.seed, simtime.Duration(*a.chaosDur), harness.Jobs, *a.shards, *a.workers)
		fmt.Fprintln(a.stdout, tb)
		failed := 0
		for _, res := range results {
			if !res.Passed {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d campaigns failed", failed, len(results))
		}
		return nil
	}
	var opts *core.OptSet
	for _, step := range harness.ChaosOptSets() {
		if step.Name == *a.optsName {
			o := step.Opts
			opts = &o
		}
	}
	if opts == nil {
		return fmt.Errorf("unknown option set %q", *a.optsName)
	}
	if *a.replicas > 2 {
		// f+1 chain campaign: a witness-arbitrated chain of -replicas
		// members through the chain fault kinds (zone-kill,
		// witness-partition, asym-cut) and a terminal primary kill. The
		// trace is byte-identical for any -shards/-workers value.
		res := chaos.VerifyChainSeed(chaos.ChainConfig{
			Seed: *a.seed, Opts: *opts, OptName: *a.optsName,
			Replicas: *a.replicas,
			Kills:    1,
			Duration: simtime.Duration(*a.chaosDur),
			Shards:   *a.shards,
			Workers:  *a.workers,
		})
		fmt.Fprint(a.stdout, res.Trace)
		if !res.Passed {
			return fmt.Errorf("chain campaign failed (seed %d, opts %s, replicas %d)", *a.seed, *a.optsName, *a.replicas)
		}
		return nil
	}
	cfg := chaos.Config{
		Seed: *a.seed, Opts: *opts, OptName: *a.optsName,
		Duration: simtime.Duration(*a.chaosDur),
		Degrade:  a.degradePol,
		Shards:   *a.shards,
		Workers:  *a.workers,
	}
	if *a.traceF != "" {
		f, err := os.Open(*a.traceF)
		if err != nil {
			return fmt.Errorf("-traffic: %v", err)
		}
		tr, err := traffic.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		cfg.Traffic = tr
	}
	res := chaos.VerifySeed(cfg)
	fmt.Fprint(a.stdout, res.Trace)
	if !res.Passed {
		return fmt.Errorf("campaign failed (seed %d, opts %s)", *a.seed, *a.optsName)
	}
	return nil
}

// runTraffic dispatches the trace tooling: exactly one of -synth,
// -capture, -replay.
func (a *app) runTraffic() error {
	modes := 0
	for _, on := range []bool{*a.synth != "", *a.capture != "", *a.replay} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return fmt.Errorf("traffic: pick exactly one of -synth <profile>, -capture <benchmark>, -replay")
	}
	switch {
	case *a.synth != "":
		cfg, err := traffic.Profile(*a.synth, *a.seed)
		if err != nil {
			return err
		}
		cfg.Clients = *a.tClients
		cfg.Rate = *a.tRate
		cfg.Duration = simtime.Duration(*a.tDur)
		return traffic.Synthesize(cfg).Encode(a.stdout)
	case *a.capture != "":
		return a.runTrafficCapture()
	default:
		return a.runTrafficReplay()
	}
}

// runTrafficCapture runs the benchmark's uniform client set against a
// live server with the trace recorder attached, and emits the capture.
func (a *app) runTrafficCapture() error {
	wl, err := workloads.ByName(*a.capture)
	if err != nil {
		return err
	}
	sv, ok := wl.(workloads.ServerWorkload)
	if !ok {
		return fmt.Errorf("traffic: -capture needs a server benchmark, %q runs to completion", *a.capture)
	}
	clock := simtime.NewClock()
	cl := core.NewCluster(clock, core.ClusterParams{})
	sv.Install(cl.NewProtectedContainer(*a.capture, "10.0.0.10", 1))
	set := sv.NewClients(cl, "10.0.0.10", *a.tClients, *a.seed)
	set.Capture = traffic.NewRecorder("capture:"+*a.capture, len(set.Clients), clock.Now())
	clock.RunFor(simtime.Duration(*a.tDur))
	tr, err := set.Capture.Trace()
	if err != nil {
		return err
	}
	return tr.Encode(a.stdout)
}

// runTrafficReplay reads a JSONL trace from stdin and replays it through
// a chaos campaign with windowed SLO judging. The default shape drives
// the trace through a terminal primary kill (the trace should outlast
// -chaos-duration so the kill lands mid-run); -smoke runs the clean
// fault-free CI shape instead, where the slo-windows oracle requires
// zero violation windows.
func (a *app) runTrafficReplay() error {
	tr, err := traffic.Parse(a.stdin)
	if err != nil {
		return err
	}
	cfg := chaos.Config{
		Seed: *a.seed, Opts: core.AllOpts(), OptName: "traffic-replay",
		Duration: simtime.Duration(*a.chaosDur),
		Terminal: chaos.TerminalKill, Events: -1,
		Traffic: tr,
		Degrade: a.degradePol,
		Shards:  *a.shards,
		Workers: *a.workers,
	}
	if *a.smoke {
		cfg.Terminal = chaos.TerminalNone
		cfg.Duration = tr.Duration() + 100*simtime.Millisecond
	}
	res := chaos.VerifySeed(cfg)
	fmt.Fprint(a.stdout, res.Trace)
	if !res.Passed {
		return fmt.Errorf("trace replay failed (seed %d)", *a.seed)
	}
	return nil
}

func (a *app) runBench8() error {
	rep := harness.RunBench8(*a.seed)
	fmt.Fprintln(a.stderr, harness.Bench8Table(rep))
	if !rep.AllPassed {
		return fmt.Errorf("bench8: a profile failed its oracles")
	}
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runFleet() error {
	cfg := chaos.FleetConfig{
		Seed:    *a.seed,
		Opts:    core.AllOpts(),
		OptName: "all",
		Pairs:   *a.pairs,
		Workers: *a.hosts,
		Spares:  *a.spares,
		Kills:   *a.kills,
		Degrade: a.degradePol,
		Shards:  *a.shards,

		EngineWorkers: *a.workers,
	}
	if d := simtime.Duration(*a.chaosDur); d > 0 {
		cfg.Duration = d
	}
	if *a.smoke {
		cfg.Pairs, cfg.Workers, cfg.Spares, cfg.Kills = 4, 4, 1, 1
		cfg.Duration = 600 * simtime.Millisecond
	}
	// Chain flags apply after the smoke shape so the CI form
	// `fleet -smoke -replicas 3 -zones 3` runs small chains; wider
	// chains need one spare per zone for zone-kill re-protection.
	cfg.Replicas, cfg.Zones = *a.replicas, *a.zones
	if *a.smoke && cfg.Replicas > 2 && cfg.Spares < cfg.Replicas {
		cfg.Spares = cfg.Replicas
	}
	if cfg.Pairs <= 0 || cfg.Workers < 2 {
		return fmt.Errorf("need at least 1 pair and 2 hosts (got -pairs %d -hosts %d)", cfg.Pairs, cfg.Workers)
	}
	if cfg.Workers < cfg.Replicas {
		return fmt.Errorf("zone-anti-affine chains need -hosts >= -replicas (got -hosts %d -replicas %d)", cfg.Workers, cfg.Replicas)
	}
	res := chaos.VerifyFleetSeed(cfg)
	fmt.Fprint(a.stdout, res.Trace)
	for _, v := range res.Verdicts {
		if v.Oracle == "determinism" {
			fmt.Fprintf(a.stdout, "verdict determinism %s: %s\n", map[bool]string{true: "PASS", false: "FAIL"}[v.OK], v.Detail)
		}
	}
	if !res.Passed {
		return fmt.Errorf("fleet campaign failed (seed %d, %d pairs, %d+%d hosts, %d kills)",
			cfg.Seed, cfg.Pairs, cfg.Workers, cfg.Spares, cfg.Kills)
	}
	return nil
}

func (a *app) runFleetBench() error {
	rep := harness.RunBench4(*a.seed)
	fmt.Fprintln(a.stderr, harness.Bench4Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runBench5() error {
	rep := harness.RunBench5(*a.seed)
	fmt.Fprintln(a.stderr, harness.Bench5Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runBench7() error {
	rep := harness.RunBench7(*a.seed)
	fmt.Fprintln(a.stderr, harness.Bench7Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runBench9() error {
	rep := harness.RunBench9(*a.seed)
	fmt.Fprintln(a.stderr, harness.Bench9Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runBench6() error {
	rep := harness.RunBench6(*a.seed)
	fmt.Fprintln(a.stderr, harness.Bench6Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = a.stdout.Write(out)
	return err
}

func (a *app) runTimeline() error {
	csv, err := harness.RunTimeline(*a.bench, a.runConfig())
	if err != nil {
		return err
	}
	fmt.Fprint(a.stdout, csv)
	return nil
}

// The "all" output is what EXPERIMENTS.md's committed run log contains;
// regenerate with:
//
//	./niliconctl all > results.txt
