// Command niliconctl runs the NiLiCon reproduction experiments and
// prints the paper's tables and figures.
//
// Usage:
//
//	niliconctl <experiment> [flags]
//
// Experiments:
//
//	table1         Optimization ladder (streamcluster)
//	table2         Recovery latency breakdown (Net, Redis)
//	fig3           Overhead comparison MC vs NiLiCon (also prints
//	               Tables III, IV and V from the same runs)
//	table6         Single-client response latency
//	validate       §VII-A fault-injection validation
//	pipeline       Epoch-pipeline transfer-mode ablation (streamcluster)
//	bench          BENCH_3.json: the optimization ladder plus the §8
//	               delta-compression rows, as JSON on stdout
//	chaos          Seeded deterministic fault campaign with invariant
//	               oracles (-sweep for the full matrix, including the
//	               fleet scenarios)
//	fleet          Fleet campaign: -pairs containers over -hosts workers
//	               (+ -spares), -kills concurrent host failures, all
//	               oracles verified (-smoke for the reduced CI shape)
//	fleetbench     BENCH_4.json: fleet scaling sweep, as JSON on stdout
//	bench5         BENCH_5.json: simulation-engine event throughput,
//	               serial clock vs sharded event wheels, as JSON on
//	               stdout
//	scale-threads  Streamcluster 1..32 threads
//	scale-clients  Lighttpd 2..128 clients
//	scale-procs    Lighttpd 1..8 processes
//	all            Everything above
//
// The chaos and fleet campaigns run with output-commit lease arbitration
// on; -degrade selects the lease degradation policy (strict keeps a
// primary that lost its backup fenced, availability lets it declare the
// pair unprotected and serve without acks until re-protection).
//
// The -pipeline flag enables the overlapped (pipelined) state transfer
// on experiments that run a replicator (timeline, validate, fig3, ...).
// The -delta flag enables the delta-compressed replication stream
// (DeltaPages + BackupPageDedup, DESIGN.md §8) the same way. The -j flag
// runs sweep-style experiments (chaos -sweep, table1, pipeline, bench,
// fleetbench) on a worker pool; every seeded run stays single-threaded
// and results are collected in a fixed order, so output is
// byte-identical for any -j value.
//
// All experiments run in virtual time and are fully deterministic for a
// given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nilicon/internal/chaos"
	"nilicon/internal/core"
	"nilicon/internal/harness"
	"nilicon/internal/report"
	"nilicon/internal/simtime"
)

// flags shared across subcommands; parsed once in main.
var (
	fs       = flag.NewFlagSet("niliconctl", flag.ExitOnError)
	seed     = fs.Int64("seed", 1, "deterministic simulation seed")
	warmup   = fs.Duration("warmup", time.Second, "virtual warmup before measurement")
	measure  = fs.Duration("measure", 3*time.Second, "virtual measurement window")
	runs     = fs.Int("runs", 5, "validation runs per benchmark")
	bench    = fs.String("bench", "redis", "benchmark for the timeline command")
	runLen   = fs.Duration("runlen", 20*time.Second, "validation run length (paper: 60s, 50 runs)")
	pipeline = fs.Bool("pipeline", false, "enable the overlapped (pipelined) state transfer")
	delta    = fs.Bool("delta", false, "enable the delta-compressed replication stream (XOR page deltas, zero elision, backup page dedup)")
	jobs     = fs.Int("j", 1, "worker-pool width for sweep experiments (output is identical for any value)")
	seeds    = fs.Int("seeds", 20, "chaos: campaigns per matrix entry in sweep mode")
	optsName = fs.String("opts", "all", "chaos: option set (basic|stop-and-copy|all|pipelined|delta)")
	sweep    = fs.Bool("sweep", false, "chaos: run the full matrix sweep instead of one campaign")
	chaosDur = fs.Duration("chaos-duration", 1500*time.Millisecond, "chaos/fleet: fault-injection window (virtual)")
	pairs    = fs.Int("pairs", 8, "fleet: protected container pairs")
	hosts    = fs.Int("hosts", 4, "fleet: worker hosts in the pool")
	spares   = fs.Int("spares", 2, "fleet: spare hosts for re-protection")
	kills    = fs.Int("kills", 2, "fleet: concurrent host failures to inject")
	smoke    = fs.Bool("smoke", false, "fleet: reduced CI shape (4 pairs, 4 hosts, 1 kill, short window)")
	degrade  = fs.String("degrade", "strict", "chaos/fleet: lease degradation policy (strict|availability)")
	shards   = fs.Int("shards", 0, "chaos/fleet: simulation engine (0 = serial clock; N>=1 = sharded event wheels with N lanes, trace-identical for any N)")
)

func main() {
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: niliconctl <table1|table2|fig3|table6|validate|pipeline|bench|chaos|fleet|fleetbench|bench5|scale-threads|scale-clients|scale-procs|report|timeline|all> [flags]\n")
		fs.PrintDefaults()
	}
	if len(os.Args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	_ = fs.Parse(os.Args[2:])

	harness.Jobs = *jobs
	harness.Verbose = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "fig3", "table6", "validate", "pipeline", "scale-threads", "scale-clients", "scale-procs"} {
			fmt.Printf("== %s ==\n", name)
			if err := runCommand(name); err != nil {
				fail(name, err)
			}
		}
		return
	}
	if err := runCommand(cmd); err != nil {
		fail(cmd, err)
	}
}

// fail reports a subcommand error uniformly on stderr and exits nonzero.
// Unknown-command errors exit 2 (usage), everything else 1.
func fail(cmd string, err error) {
	fmt.Fprintf(os.Stderr, "niliconctl %s: %v\n", cmd, err)
	if _, ok := err.(unknownCommandError); ok {
		fs.Usage()
		os.Exit(2)
	}
	os.Exit(1)
}

type unknownCommandError string

func (e unknownCommandError) Error() string { return fmt.Sprintf("unknown experiment %q", string(e)) }

// runConfig assembles the shared RunConfig from the parsed flags.
func runConfig() harness.RunConfig {
	return harness.RunConfig{Seed: *seed, Warmup: *warmup, Measure: *measure, Pipelined: *pipeline, Delta: *delta}
}

// runCommand dispatches one experiment; every branch is a run helper
// returning an error so exit handling stays in one place.
func runCommand(name string) error {
	switch name {
	case "table1":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunTable1(rc); return tb })
	case "table2":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunTable2(rc); return tb })
	case "fig3":
		return runFig3()
	case "table6":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunTable6(rc); return tb })
	case "validate":
		return runValidate()
	case "pipeline":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunPipelineAblation(rc); return tb })
	case "bench":
		return runBench()
	case "chaos":
		return runChaos()
	case "fleet":
		return runFleet()
	case "fleetbench":
		return runFleetBench()
	case "bench5":
		return runBench5()
	case "scale-threads":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunScaleThreads(nil, rc); return tb })
	case "scale-clients":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunScaleClients(nil, rc); return tb })
	case "scale-procs":
		return runTable(func(rc harness.RunConfig) fmt.Stringer { _, tb := harness.RunScaleProcs(nil, rc); return tb })
	case "report":
		fmt.Println(report.Build(runConfig()))
		return nil
	case "timeline":
		return runTimeline()
	default:
		return unknownCommandError(name)
	}
}

// runTable covers the experiments whose whole output is one table.
func runTable(f func(harness.RunConfig) fmt.Stringer) error {
	fmt.Println(f(runConfig()))
	return nil
}

func runFig3() error {
	rows, tb := harness.RunFigure3(runConfig())
	fmt.Println(harness.RenderFigure3(rows))
	fmt.Println(tb)
	fmt.Println(harness.Table3(rows))
	fmt.Println(harness.Table4(rows))
	fmt.Println(harness.Table5(rows))
	return nil
}

func runValidate() error {
	_, tb := harness.RunValidationOpts(nil, *runs, simtime.Duration(*runLen), *seed, *pipeline)
	fmt.Println(tb)
	return nil
}

func runBench() error {
	out, err := harness.RunBench3(runConfig()).JSON()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

func runChaos() error {
	pol, err := core.ParseDegradePolicy(*degrade)
	if err != nil {
		return err
	}
	if *sweep {
		results, tb := harness.RunChaosSweepSharded(*seeds, *seed, simtime.Duration(*chaosDur), harness.Jobs, *shards)
		fmt.Println(tb)
		failed := 0
		for _, res := range results {
			if !res.Passed {
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d of %d campaigns failed", failed, len(results))
		}
		return nil
	}
	var opts *core.OptSet
	for _, step := range harness.ChaosOptSets() {
		if step.Name == *optsName {
			o := step.Opts
			opts = &o
		}
	}
	if opts == nil {
		return fmt.Errorf("unknown option set %q", *optsName)
	}
	res := chaos.VerifySeed(chaos.Config{
		Seed: *seed, Opts: *opts, OptName: *optsName,
		Duration: simtime.Duration(*chaosDur),
		Degrade:  pol,
		Shards:   *shards,
	})
	fmt.Print(res.Trace)
	if !res.Passed {
		return fmt.Errorf("campaign failed (seed %d, opts %s)", *seed, *optsName)
	}
	return nil
}

func runFleet() error {
	pol, err := core.ParseDegradePolicy(*degrade)
	if err != nil {
		return err
	}
	cfg := chaos.FleetConfig{
		Seed:    *seed,
		Opts:    core.AllOpts(),
		OptName: "all",
		Pairs:   *pairs,
		Workers: *hosts,
		Spares:  *spares,
		Kills:   *kills,
		Degrade: pol,
		Shards:  *shards,
	}
	if d := simtime.Duration(*chaosDur); d > 0 {
		cfg.Duration = d
	}
	if *smoke {
		cfg.Pairs, cfg.Workers, cfg.Spares, cfg.Kills = 4, 4, 1, 1
		cfg.Duration = 600 * simtime.Millisecond
	}
	if cfg.Pairs <= 0 || cfg.Workers < 2 {
		return fmt.Errorf("need at least 1 pair and 2 hosts (got -pairs %d -hosts %d)", cfg.Pairs, cfg.Workers)
	}
	res := chaos.VerifyFleetSeed(cfg)
	fmt.Print(res.Trace)
	for _, v := range res.Verdicts {
		if v.Oracle == "determinism" {
			fmt.Printf("verdict determinism %s: %s\n", map[bool]string{true: "PASS", false: "FAIL"}[v.OK], v.Detail)
		}
	}
	if !res.Passed {
		return fmt.Errorf("fleet campaign failed (seed %d, %d pairs, %d+%d hosts, %d kills)",
			cfg.Seed, cfg.Pairs, cfg.Workers, cfg.Spares, cfg.Kills)
	}
	return nil
}

func runFleetBench() error {
	rep := harness.RunBench4(*seed)
	fmt.Fprintln(os.Stderr, harness.Bench4Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

func runBench5() error {
	rep := harness.RunBench5(*seed)
	fmt.Fprintln(os.Stderr, harness.Bench5Table(rep))
	out, err := rep.JSON()
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(out)
	return err
}

func runTimeline() error {
	csv, err := harness.RunTimeline(*bench, runConfig())
	if err != nil {
		return err
	}
	fmt.Print(csv)
	return nil
}

// The "all" output is what EXPERIMENTS.md's committed run log contains;
// regenerate with:
//
//	./niliconctl all > results.txt
