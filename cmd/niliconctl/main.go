// Command niliconctl runs the NiLiCon reproduction experiments and
// prints the paper's tables and figures.
//
// Usage:
//
//	niliconctl <experiment> [flags]
//
// Experiments:
//
//	table1         Optimization ladder (streamcluster)
//	table2         Recovery latency breakdown (Net, Redis)
//	fig3           Overhead comparison MC vs NiLiCon (also prints
//	               Tables III, IV and V from the same runs)
//	table6         Single-client response latency
//	validate       §VII-A fault-injection validation
//	pipeline       Epoch-pipeline transfer-mode ablation (streamcluster)
//	bench          BENCH_3.json: the optimization ladder plus the §8
//	               delta-compression rows, as JSON on stdout
//	chaos          Seeded deterministic fault campaign with invariant
//	               oracles (-sweep for the full seed × option-set matrix)
//	scale-threads  Streamcluster 1..32 threads
//	scale-clients  Lighttpd 2..128 clients
//	scale-procs    Lighttpd 1..8 processes
//	all            Everything above
//
// The -pipeline flag enables the overlapped (pipelined) state transfer
// on experiments that run a replicator (timeline, validate, fig3, ...).
// The -delta flag enables the delta-compressed replication stream
// (DeltaPages + BackupPageDedup, DESIGN.md §8) the same way. The -j flag
// runs sweep-style experiments (chaos -sweep, table1, pipeline, bench)
// on a worker pool; every seeded run stays single-threaded and results
// are collected in a fixed order, so output is byte-identical for any
// -j value.
//
// All experiments run in virtual time and are fully deterministic for a
// given -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nilicon/internal/chaos"
	"nilicon/internal/core"
	"nilicon/internal/harness"
	"nilicon/internal/report"
	"nilicon/internal/simtime"
)

func main() {
	fs := flag.NewFlagSet("niliconctl", flag.ExitOnError)
	seed := fs.Int64("seed", 1, "deterministic simulation seed")
	warmup := fs.Duration("warmup", time.Second, "virtual warmup before measurement")
	measure := fs.Duration("measure", 3*time.Second, "virtual measurement window")
	runs := fs.Int("runs", 5, "validation runs per benchmark")
	bench := fs.String("bench", "redis", "benchmark for the timeline command")
	runLen := fs.Duration("runlen", 20*time.Second, "validation run length (paper: 60s, 50 runs)")
	pipelined := fs.Bool("pipeline", false, "enable the overlapped (pipelined) state transfer")
	delta := fs.Bool("delta", false, "enable the delta-compressed replication stream (XOR page deltas, zero elision, backup page dedup)")
	jobs := fs.Int("j", 1, "worker-pool width for sweep experiments (output is identical for any value)")
	seeds := fs.Int("seeds", 20, "chaos: campaigns per option set in sweep mode")
	optsName := fs.String("opts", "all", "chaos: option set (basic|stop-and-copy|all|pipelined|delta)")
	sweep := fs.Bool("sweep", false, "chaos: run the full seed × option-set sweep instead of one campaign")
	chaosDur := fs.Duration("chaos-duration", 1500*time.Millisecond, "chaos: fault-injection window (virtual)")
	fs.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: niliconctl <table1|table2|fig3|table6|validate|pipeline|bench|chaos|scale-threads|scale-clients|scale-procs|report|timeline|all> [flags]\n")
		fs.PrintDefaults()
	}
	if len(os.Args) < 2 {
		fs.Usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	_ = fs.Parse(os.Args[2:])

	rc := harness.RunConfig{Seed: *seed, Warmup: *warmup, Measure: *measure, Pipelined: *pipelined, Delta: *delta}
	harness.Jobs = *jobs
	harness.Verbose = func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}

	run := func(name string) {
		switch name {
		case "table1":
			_, tb := harness.RunTable1(rc)
			fmt.Println(tb)
		case "table2":
			_, tb := harness.RunTable2(rc)
			fmt.Println(tb)
		case "fig3":
			rows, tb := harness.RunFigure3(rc)
			fmt.Println(harness.RenderFigure3(rows))
			fmt.Println(tb)
			fmt.Println(harness.Table3(rows))
			fmt.Println(harness.Table4(rows))
			fmt.Println(harness.Table5(rows))
		case "table6":
			_, tb := harness.RunTable6(rc)
			fmt.Println(tb)
		case "validate":
			_, tb := harness.RunValidationOpts(nil, *runs, simtime.Duration(*runLen), *seed, *pipelined)
			fmt.Println(tb)
		case "pipeline":
			_, tb := harness.RunPipelineAblation(rc)
			fmt.Println(tb)
		case "bench":
			out, err := harness.RunBench3(rc).JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			os.Stdout.Write(out)
		case "chaos":
			if *sweep {
				results, tb := harness.RunChaosSweep(*seeds, *seed, simtime.Duration(*chaosDur))
				fmt.Println(tb)
				for _, res := range results {
					if !res.Passed {
						os.Exit(1)
					}
				}
				return
			}
			var opts *core.OptSet
			for _, step := range harness.ChaosOptSets() {
				if step.Name == *optsName {
					o := step.Opts
					opts = &o
				}
			}
			if opts == nil {
				fmt.Fprintf(os.Stderr, "unknown option set %q\n", *optsName)
				os.Exit(2)
			}
			res := chaos.VerifySeed(chaos.Config{
				Seed: *seed, Opts: *opts, OptName: *optsName,
				Duration: simtime.Duration(*chaosDur),
			})
			fmt.Print(res.Trace)
			if !res.Passed {
				os.Exit(1)
			}
		case "scale-threads":
			_, tb := harness.RunScaleThreads(nil, rc)
			fmt.Println(tb)
		case "scale-clients":
			_, tb := harness.RunScaleClients(nil, rc)
			fmt.Println(tb)
		case "scale-procs":
			_, tb := harness.RunScaleProcs(nil, rc)
			fmt.Println(tb)
		case "report":
			fmt.Println(report.Build(rc))
		case "timeline":
			csv, err := harness.RunTimeline(*bench, rc)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Print(csv)
		default:
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", name)
			fs.Usage()
			os.Exit(2)
		}
	}

	if cmd == "all" {
		for _, name := range []string{"table1", "table2", "fig3", "table6", "validate", "pipeline", "scale-threads", "scale-clients", "scale-procs"} {
			fmt.Printf("== %s ==\n", name)
			run(name)
		}
		return
	}
	run(cmd)
}

// The "all" output is what EXPERIMENTS.md's committed run log contains;
// regenerate with:
//
//	./niliconctl all > results.txt
