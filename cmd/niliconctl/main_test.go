package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestUsageErrors: bad invocations must be rejected up front with a
// clear one-line error on stderr and exit code 2, before any experiment
// starts (a mistyped sweep flag must not burn minutes of CPU first).
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"no-args", nil, "usage: niliconctl"},
		{"unknown-subcommand", []string{"frobnicate"}, `unknown experiment "frobnicate"`},
		{"subcommand-typo", []string{"chaso"}, `unknown experiment "chaso"`},
		{"negative-shards", []string{"chaos", "-shards", "-1"}, "-shards must be >= 0"},
		{"zero-jobs", []string{"chaos", "-j", "0"}, "-j must be >= 1"},
		{"negative-jobs", []string{"bench", "-j", "-4"}, "-j must be >= 1"},
		{"zero-seeds", []string{"chaos", "-sweep", "-seeds", "0"}, "-seeds must be >= 1"},
		{"zero-runs", []string{"validate", "-runs", "0"}, "-runs must be >= 1"},
		{"degrade-typo", []string{"chaos", "-degrade", "availabilty"}, "-degrade"},
		{"unparseable-int", []string{"chaos", "-seeds", "abc"}, `invalid value "abc"`},
		{"unparseable-duration", []string{"chaos", "-chaos-duration", "soon"}, `invalid value "soon"`},
		{"unknown-flag", []string{"chaos", "-frob"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := newApp(&stdout, &stderr).run(tc.args)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error wrote to stdout: %s", stdout.String())
			}
		})
	}
}

// TestChaosReplayInvocation runs one short replay-mode campaign through
// the real CLI entry point: exit 0, trace on stdout, every oracle PASS.
func TestChaosReplayInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := newApp(&stdout, &stderr).run(
		[]string{"chaos", "-opts", "replay", "-chaos-duration", "400ms", "-seed", "7"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "chaos seed=7 opts=replay") {
		t.Fatalf("trace header missing:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("campaign verdicts failed:\n%s", out)
	}
}

// TestTrafficSynthReplayPipe runs the CI pipe through the real CLI
// entry point: synthesize a trace, replay it in the clean -smoke shape,
// and check the SLO verdict; a modeless traffic invocation is rejected.
func TestTrafficSynthReplayPipe(t *testing.T) {
	var trace, stderr bytes.Buffer
	if code := newApp(&trace, &stderr).run(
		[]string{"traffic", "-synth", "uniform", "-traffic-duration", "500ms"}); code != 0 {
		t.Fatalf("synth exit=%d stderr=%s", code, stderr.String())
	}
	var out, stderr2 bytes.Buffer
	a := newApp(&out, &stderr2)
	a.stdin = &trace
	if code := a.run([]string{"traffic", "-replay", "-smoke"}); code != 0 {
		t.Fatalf("replay exit=%d stderr=%s", code, stderr2.String())
	}
	if !strings.Contains(out.String(), "verdict slo-windows PASS") {
		t.Fatalf("missing slo-windows verdict:\n%s", out.String())
	}
	var o3, e3 bytes.Buffer
	if code := newApp(&o3, &e3).run([]string{"traffic"}); code != 1 ||
		!strings.Contains(e3.String(), "pick exactly one") {
		t.Fatalf("bare traffic: code=%d stderr=%s", code, e3.String())
	}
}
