package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestUsageErrors: bad invocations must be rejected up front with a
// clear one-line error on stderr and exit code 2, before any experiment
// starts (a mistyped sweep flag must not burn minutes of CPU first).
func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name    string
		args    []string
		wantErr string // substring of stderr
	}{
		{"no-args", nil, "usage: niliconctl"},
		{"unknown-subcommand", []string{"frobnicate"}, `unknown experiment "frobnicate"`},
		{"subcommand-typo", []string{"chaso"}, `unknown experiment "chaso"`},
		{"negative-shards", []string{"chaos", "-shards", "-1"}, "-shards must be >= 0"},
		{"zero-jobs", []string{"chaos", "-j", "0"}, "-j must be >= 1"},
		{"negative-jobs", []string{"bench", "-j", "-4"}, "-j must be >= 1"},
		{"zero-seeds", []string{"chaos", "-sweep", "-seeds", "0"}, "-seeds must be >= 1"},
		{"zero-runs", []string{"validate", "-runs", "0"}, "-runs must be >= 1"},
		{"degrade-typo", []string{"chaos", "-degrade", "availabilty"}, "-degrade"},
		{"unparseable-int", []string{"chaos", "-seeds", "abc"}, `invalid value "abc"`},
		{"unparseable-duration", []string{"chaos", "-chaos-duration", "soon"}, `invalid value "soon"`},
		{"unknown-flag", []string{"chaos", "-frob"}, "flag provided but not defined"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			code := newApp(&stdout, &stderr).run(tc.args)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2\nstderr: %s", code, stderr.String())
			}
			if !strings.Contains(stderr.String(), tc.wantErr) {
				t.Fatalf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
			if stdout.Len() != 0 {
				t.Fatalf("usage error wrote to stdout: %s", stdout.String())
			}
		})
	}
}

// TestChaosReplayInvocation runs one short replay-mode campaign through
// the real CLI entry point: exit 0, trace on stdout, every oracle PASS.
func TestChaosReplayInvocation(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code := newApp(&stdout, &stderr).run(
		[]string{"chaos", "-opts", "replay", "-chaos-duration", "400ms", "-seed", "7"})
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "chaos seed=7 opts=replay") {
		t.Fatalf("trace header missing:\n%s", out)
	}
	if strings.Contains(out, "FAIL") {
		t.Fatalf("campaign verdicts failed:\n%s", out)
	}
}
