module nilicon

go 1.22
