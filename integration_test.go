package nilicon_test

import (
	"testing"

	"nilicon/internal/core"
	"nilicon/internal/faultinject"
	"nilicon/internal/simtime"
	"nilicon/internal/workloads"
)

// TestEndToEndFailover is the repository's top-level smoke test: the
// quickstart flow — protect a KV container, drive verified load, fail
// the primary, and require transparent recovery.
func TestEndToEndFailover(t *testing.T) {
	clock := simtime.NewClock()
	cluster := core.NewCluster(clock, core.ClusterParams{})
	ctr := cluster.NewProtectedContainer("kv", "10.0.0.10", 1)
	server := workloads.Redis()
	server.Install(ctr)

	cfg := core.DefaultConfig()
	cfg.ExtraStopPerCheckpoint = server.Profile().TotalExtraStop()
	cfg.Reattach = func(rc core.RestoredContainer, state any) {
		if err := workloads.Redis().Reattach(rc, state); err != nil {
			t.Errorf("reattach: %v", err)
		}
	}
	repl := core.NewReplicator(cluster, ctr, cfg)
	repl.Start()

	clients := server.NewClients(cluster, "10.0.0.10", 1, 42)
	clock.RunFor(1500 * simtime.Millisecond)
	if clients.Completed == 0 {
		t.Fatal("no requests completed before the fault")
	}
	faultinject.FailStop(repl)
	before := clients.Completed
	clock.RunFor(8 * simtime.Second)

	if !repl.Backup.Recovered() {
		t.Fatal("no failover")
	}
	if err := repl.Backup.RecoverError(); err != nil {
		t.Fatal(err)
	}
	if clients.Completed <= before {
		t.Fatal("service did not resume after failover")
	}
	if n := len(clients.ValidationErrors()); n != 0 {
		t.Fatalf("%d content errors across failover: %v", n, clients.ValidationErrors()[0])
	}
	if clients.Resets != 0 {
		t.Fatalf("%d broken connections", clients.Resets)
	}
}

// TestDeterminism re-runs the same simulation twice and requires
// identical results — the property every experiment in this repository
// relies on.
func TestDeterminism(t *testing.T) {
	run := func() (int64, uint64, float64) {
		clock := simtime.NewClock()
		cluster := core.NewCluster(clock, core.ClusterParams{})
		ctr := cluster.NewProtectedContainer("kv", "10.0.0.10", 1)
		server := workloads.Redis()
		server.Install(ctr)
		cfg := core.DefaultConfig()
		cfg.ExtraStopPerCheckpoint = server.Profile().TotalExtraStop()
		repl := core.NewReplicator(cluster, ctr, cfg)
		repl.Start()
		clients := server.NewClients(cluster, "10.0.0.10", 1, 7)
		clock.RunUntil(simtime.Time(2 * simtime.Second))
		return clients.Completed, repl.Epochs(), repl.StopTimes.Mean()
	}
	c1, e1, s1 := run()
	c2, e2, s2 := run()
	if c1 != c2 || e1 != e2 || s1 != s2 {
		t.Fatalf("non-deterministic: (%d,%d,%v) vs (%d,%d,%v)", c1, e1, s1, c2, e2, s2)
	}
	if c1 == 0 || e1 == 0 {
		t.Fatal("degenerate run")
	}
}
